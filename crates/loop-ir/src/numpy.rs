//! A NumPy-style array-expression frontend.
//!
//! The paper's §4.3 evaluates auto-scheduling across languages by translating
//! NPBench (NumPy) implementations of the PolyBench kernels through the DaCe
//! Python frontend. The structural effect of such a frontend is that every
//! array operation becomes its own loop nest (operator-at-a-time evaluation)
//! and slicing produces triangular or shifted loop bounds — a very different
//! loop structure from the hand-written C variants.
//!
//! [`NumpyProgram`] reproduces that translation: a small Python-like program
//! of array statements (`C[i, :i+1] += alpha * A[i, k] * A[:i+1, k]`,
//! `D = A @ B`, elementwise expressions, axis reductions) is lowered into the
//! loop-nest IR, one loop nest per statement, and additionally reports the
//! sequence of framework-level operations ([`FrameworkOp`]) that a NumPy-like
//! runtime would execute, which the Python-framework baselines cost.

use std::collections::BTreeMap;

use crate::array::ArrayRef;
use crate::error::{IrError, Result};
use crate::expr::{cst, Expr, Var};
use crate::nest::{Computation, Loop, Node};
use crate::program::Program;
use crate::scalar::{BinOp, ScalarExpr};

/// A slice bound pair `[lower, upper)` along one array dimension.
#[derive(Clone, PartialEq, Debug)]
pub struct Range {
    /// Inclusive lower bound.
    pub lower: Expr,
    /// Exclusive upper bound.
    pub upper: Expr,
}

impl Range {
    /// The full extent of a dimension: `0..extent`.
    pub fn full(extent: Expr) -> Self {
        Range {
            lower: cst(0),
            upper: extent,
        }
    }

    /// An explicit range.
    pub fn new(lower: Expr, upper: Expr) -> Self {
        Range { lower, upper }
    }

    /// A single index `i`, i.e. the degenerate range `i..i+1` that removes
    /// the dimension from the result.
    pub fn index(at: Expr) -> Self {
        Range {
            lower: at.clone(),
            upper: at + cst(1),
        }
    }

    fn is_index(&self) -> bool {
        self.upper == self.lower.clone() + cst(1) || {
            // after simplification
            (self.upper.clone() - self.lower.clone()).simplify() == cst(1)
        }
    }
}

/// A sliced view of a named array.
#[derive(Clone, PartialEq, Debug)]
pub struct ArrayView {
    /// The underlying array.
    pub array: Var,
    /// One range per array dimension.
    pub ranges: Vec<Range>,
    /// Whether the (two-dimensional) view is transposed.
    pub transposed: bool,
}

impl ArrayView {
    /// A view of the whole array given its declared extents.
    pub fn whole(array: impl Into<Var>, extents: &[Expr]) -> Self {
        ArrayView {
            array: array.into(),
            ranges: extents.iter().cloned().map(Range::full).collect(),
            transposed: false,
        }
    }

    /// A view with explicit per-dimension ranges.
    pub fn sliced(array: impl Into<Var>, ranges: Vec<Range>) -> Self {
        ArrayView {
            array: array.into(),
            ranges,
            transposed: false,
        }
    }

    /// Marks the view as transposed (2-D views only).
    pub fn t(mut self) -> Self {
        self.transposed = !self.transposed;
        self
    }

    /// The dimensions of the view that are not degenerate single indices,
    /// i.e. the shape of the value the view produces.
    fn free_dims(&self) -> Vec<(usize, Range)> {
        let mut dims: Vec<(usize, Range)> = self
            .ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_index())
            .map(|(i, r)| (i, r.clone()))
            .collect();
        if self.transposed {
            dims.reverse();
        }
        dims
    }

    /// Builds the [`ArrayRef`] selecting one element of the view given the
    /// iteration variables of the free dimensions (in view order).
    fn element(&self, free_iters: &[Expr]) -> ArrayRef {
        let free = self.free_dims();
        let mut by_dim: BTreeMap<usize, Expr> = BTreeMap::new();
        for ((dim, range), iter) in free.iter().zip(free_iters) {
            by_dim.insert(*dim, range.lower.clone() + iter.clone());
        }
        let indices = self
            .ranges
            .iter()
            .enumerate()
            .map(|(i, r)| by_dim.get(&i).cloned().unwrap_or_else(|| r.lower.clone()))
            .map(|e| e.simplify())
            .collect();
        ArrayRef::new(self.array.clone(), indices)
    }

    /// The rank (number of non-degenerate dimensions) of the view.
    pub fn rank(&self) -> usize {
        self.free_dims().len()
    }

    fn extent(&self, view_dim: usize) -> Expr {
        let (_, range) = self.free_dims()[view_dim].clone();
        (range.upper - range.lower).simplify()
    }
}

/// A NumPy-style array expression.
#[derive(Clone, PartialEq, Debug)]
pub enum NpExpr {
    /// A (possibly sliced, possibly transposed) view of an array.
    View(ArrayView),
    /// A scalar constant.
    Const(f64),
    /// A named scalar parameter.
    Param(Var),
    /// Elementwise binary operation (with scalar broadcasting).
    Binary(BinOp, Box<NpExpr>, Box<NpExpr>),
    /// Matrix-matrix or matrix-vector product of two views.
    MatMul(Box<NpExpr>, Box<NpExpr>),
    /// Sum-reduction of a view along an axis (`None` = reduce everything).
    Sum(Box<NpExpr>, Option<usize>),
}

// The arithmetic method names deliberately mirror NumPy (`np.add`, …), not
// the `std::ops` traits.
#[allow(clippy::should_implement_trait)]
impl NpExpr {
    /// Elementwise addition.
    pub fn add(self, rhs: NpExpr) -> NpExpr {
        NpExpr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }
    /// Elementwise subtraction.
    pub fn sub(self, rhs: NpExpr) -> NpExpr {
        NpExpr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
    /// Elementwise multiplication.
    pub fn mul(self, rhs: NpExpr) -> NpExpr {
        NpExpr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
    /// Elementwise division.
    pub fn div(self, rhs: NpExpr) -> NpExpr {
        NpExpr::Binary(BinOp::Div, Box::new(self), Box::new(rhs))
    }
    /// Matrix product.
    pub fn matmul(self, rhs: NpExpr) -> NpExpr {
        NpExpr::MatMul(Box::new(self), Box::new(rhs))
    }

    /// The rank (number of free dimensions) of the value this expression
    /// produces.
    pub fn rank(&self) -> usize {
        match self {
            NpExpr::View(v) => v.rank(),
            NpExpr::Const(_) | NpExpr::Param(_) => 0,
            NpExpr::Binary(_, a, b) => a.rank().max(b.rank()),
            NpExpr::MatMul(a, b) => (a.rank() + b.rank()).saturating_sub(2),
            NpExpr::Sum(a, axis) => match axis {
                Some(_) => a.rank().saturating_sub(1),
                None => 0,
            },
        }
    }

    /// Counts the framework-level operations a NumPy-like runtime would
    /// execute for this expression (one per operator node).
    fn count_ops(&self, ops: &mut Vec<FrameworkOpKind>) {
        match self {
            NpExpr::View(_) | NpExpr::Const(_) | NpExpr::Param(_) => {}
            NpExpr::Binary(_, a, b) => {
                a.count_ops(ops);
                b.count_ops(ops);
                ops.push(FrameworkOpKind::Elementwise);
            }
            NpExpr::MatMul(a, b) => {
                a.count_ops(ops);
                b.count_ops(ops);
                ops.push(FrameworkOpKind::MatMul);
            }
            NpExpr::Sum(a, _) => {
                a.count_ops(ops);
                ops.push(FrameworkOpKind::Reduction);
            }
        }
    }
}

/// The target of an assignment: a (possibly sliced) view.
pub type NpTarget = ArrayView;

/// A Python-level statement.
#[derive(Clone, PartialEq, Debug)]
pub enum NpStmt {
    /// `target = value`.
    Assign {
        /// Assigned view.
        target: NpTarget,
        /// Assigned expression.
        value: NpExpr,
    },
    /// `target op= value`.
    AugAssign {
        /// Updated view.
        target: NpTarget,
        /// Combining operator.
        op: BinOp,
        /// Combined expression.
        value: NpExpr,
    },
    /// `for it in range(lower, upper): body` — an explicit Python loop.
    For {
        /// Loop variable.
        iter: Var,
        /// Inclusive lower bound.
        lower: Expr,
        /// Exclusive upper bound.
        upper: Expr,
        /// Loop body.
        body: Vec<NpStmt>,
    },
}

/// Kinds of framework-level operations, used by the Python-framework cost
/// models in the `baselines` crate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FrameworkOpKind {
    /// An elementwise kernel producing a temporary.
    Elementwise,
    /// A matrix product dispatched to a vendor BLAS by NumPy/DaCe.
    MatMul,
    /// An axis reduction.
    Reduction,
}

/// One framework-level operation with its dynamic execution count.
#[derive(Clone, PartialEq, Debug)]
pub struct FrameworkOp {
    /// The kind of operation.
    pub kind: FrameworkOpKind,
    /// How many times the Python statement containing it executes (product of
    /// enclosing explicit Python loop trip counts).
    pub invocations: i64,
    /// Number of output elements produced per invocation.
    pub output_elements: i64,
}

/// A NumPy-style program: declarations plus Python-level statements.
#[derive(Clone, Debug, Default)]
pub struct NumpyProgram {
    name: String,
    params: Vec<(String, i64)>,
    scalars: Vec<(String, f64)>,
    arrays: Vec<(String, Vec<Expr>)>,
    stmts: Vec<NpStmt>,
}

impl NumpyProgram {
    /// Creates an empty NumPy-style program.
    pub fn new(name: impl Into<String>) -> Self {
        NumpyProgram {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares an integer parameter.
    pub fn param(mut self, name: &str, value: i64) -> Self {
        self.params.push((name.to_string(), value));
        self
    }

    /// Declares a scalar parameter.
    pub fn scalar(mut self, name: &str, value: f64) -> Self {
        self.scalars.push((name.to_string(), value));
        self
    }

    /// Declares an array with named-parameter extents.
    pub fn array(mut self, name: &str, dims: &[&str]) -> Self {
        self.arrays.push((
            name.to_string(),
            dims.iter().map(|d| Expr::Var(Var::new(*d))).collect(),
        ));
        self
    }

    /// Appends a statement.
    pub fn stmt(mut self, stmt: NpStmt) -> Self {
        self.stmts.push(stmt);
        self
    }

    /// Returns the declared extents of an array (used to build whole-array
    /// views).
    pub fn extents(&self, name: &str) -> Option<Vec<Expr>> {
        self.arrays
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.clone())
    }

    /// Lowers the program to the loop-nest IR, returning the lowered program
    /// and the framework-operation trace.
    ///
    /// Each Python statement becomes its own loop nest (or a pair of nests
    /// for `A @ B`, which needs an initialization), nested inside loops
    /// generated for the explicit Python `for` statements — the same
    /// operator-at-a-time structure a Python frontend produces.
    ///
    /// # Errors
    /// Returns an error if the lowered program does not validate, or if an
    /// expression mixes incompatible ranks.
    pub fn lower(&self) -> Result<(Program, Vec<FrameworkOp>)> {
        let mut builder = Program::builder(self.name.clone());
        for (name, value) in &self.params {
            builder = builder.param(name, *value);
        }
        for (name, value) in &self.scalars {
            builder = builder.scalar(name, *value);
        }
        for (name, dims) in &self.arrays {
            builder = builder.array_with_dims(name, dims.clone());
        }
        let mut lowering = Lowering {
            next_stmt: 0,
            param_bindings: self
                .params
                .iter()
                .map(|(n, v)| (Var::new(n.as_str()), *v))
                .collect(),
            ops: Vec::new(),
        };
        let mut nodes = Vec::new();
        for stmt in &self.stmts {
            nodes.extend(lowering.lower_stmt(stmt, &[])?);
        }
        let program = builder.nodes(nodes).build()?;
        Ok((program, lowering.ops))
    }
}

struct Lowering {
    next_stmt: u32,
    param_bindings: BTreeMap<Var, i64>,
    ops: Vec<FrameworkOp>,
}

impl Lowering {
    fn fresh_name(&mut self) -> String {
        let name = format!("S{}", self.next_stmt);
        self.next_stmt += 1;
        name
    }

    fn invocations(&self, enclosing: &[(Var, Expr, Expr)]) -> i64 {
        enclosing
            .iter()
            .map(|(_, lo, hi)| {
                let lo = lo.eval(&self.param_bindings).unwrap_or(0);
                let hi = hi.eval(&self.param_bindings).unwrap_or(0);
                (hi - lo).max(1)
            })
            .product::<i64>()
            .max(1)
    }

    fn record_ops(&mut self, value: &NpExpr, invocations: i64, output_elements: i64) {
        let mut kinds = Vec::new();
        value.count_ops(&mut kinds);
        if kinds.is_empty() {
            // A bare copy still runs one elementwise kernel.
            kinds.push(FrameworkOpKind::Elementwise);
        }
        for kind in kinds {
            self.ops.push(FrameworkOp {
                kind,
                invocations,
                output_elements,
            });
        }
    }

    fn lower_stmt(&mut self, stmt: &NpStmt, enclosing: &[(Var, Expr, Expr)]) -> Result<Vec<Node>> {
        match stmt {
            NpStmt::For {
                iter,
                lower,
                upper,
                body,
            } => {
                let mut inner_ctx = enclosing.to_vec();
                inner_ctx.push((iter.clone(), lower.clone(), upper.clone()));
                let mut inner_nodes = Vec::new();
                for s in body {
                    inner_nodes.extend(self.lower_stmt(s, &inner_ctx)?);
                }
                Ok(vec![Node::Loop(Loop::new(
                    iter.clone(),
                    lower.clone(),
                    upper.clone(),
                    inner_nodes,
                ))])
            }
            NpStmt::Assign { target, value } => self.lower_assign(target, None, value, enclosing),
            NpStmt::AugAssign { target, op, value } => {
                self.lower_assign(target, Some(*op), value, enclosing)
            }
        }
    }

    fn lower_assign(
        &mut self,
        target: &NpTarget,
        reduction: Option<BinOp>,
        value: &NpExpr,
        enclosing: &[(Var, Expr, Expr)],
    ) -> Result<Vec<Node>> {
        let rank = target.rank();
        let depth = enclosing.len();
        let iters: Vec<Var> = (0..rank)
            .map(|d| Var::new(format!("_i{}_{}", depth, d)))
            .collect();
        let iter_exprs: Vec<Expr> = iters.iter().map(|v| Expr::Var(v.clone())).collect();

        let output_elements: i64 = (0..rank)
            .map(|d| {
                target
                    .extent(d)
                    .eval(&self.param_bindings)
                    .unwrap_or(1)
                    .max(1)
            })
            .product::<i64>()
            .max(1);
        self.record_ops(value, self.invocations(enclosing), output_elements);

        let mut nodes = Vec::new();
        let target_ref = target.element(&iter_exprs);
        match value {
            NpExpr::MatMul(a, b) => {
                // target (op)= A @ B lowers to an (optional) initialization
                // nest plus an accumulation nest over the contracted
                // dimension, exactly like a frontend expanding `matmul`.
                let (NpExpr::View(av), NpExpr::View(bv)) = (a.as_ref(), b.as_ref()) else {
                    return Err(IrError::Invalid(
                        "matmul operands must be array views".to_string(),
                    ));
                };
                let k_iter = Var::new(format!("_k{}", depth));
                let k_expr = Expr::Var(k_iter.clone());
                let contraction = av.extent(av.rank() - 1);
                let (a_elem, b_elem) = match (av.rank(), bv.rank()) {
                    (2, 2) => (
                        av.element(&[iter_exprs[0].clone(), k_expr.clone()]),
                        bv.element(&[k_expr.clone(), iter_exprs[1].clone()]),
                    ),
                    (2, 1) => (
                        av.element(&[iter_exprs[0].clone(), k_expr.clone()]),
                        bv.element(std::slice::from_ref(&k_expr)),
                    ),
                    (1, 2) => (
                        av.element(std::slice::from_ref(&k_expr)),
                        bv.element(&[k_expr.clone(), iter_exprs[0].clone()]),
                    ),
                    (ra, rb) => {
                        return Err(IrError::Invalid(format!(
                            "unsupported matmul ranks {ra} x {rb}"
                        )))
                    }
                };
                if reduction.is_none() {
                    let init = Computation::assign(
                        self.fresh_name(),
                        target_ref.clone(),
                        ScalarExpr::Const(0.0),
                    );
                    nodes.push(self.wrap_loops(target, &iters, vec![Node::Computation(init)]));
                }
                let update = Computation::reduction(
                    self.fresh_name(),
                    target_ref,
                    reduction.unwrap_or(BinOp::Add),
                    ScalarExpr::Load(a_elem) * ScalarExpr::Load(b_elem),
                );
                let k_loop = Node::Loop(Loop::new(
                    k_iter,
                    cst(0),
                    contraction,
                    vec![Node::Computation(update)],
                ));
                nodes.push(self.wrap_loops(target, &iters, vec![k_loop]));
            }
            NpExpr::Sum(inner, axis) => {
                let NpExpr::View(view) = inner.as_ref() else {
                    return Err(IrError::Invalid(
                        "sum operand must be an array view".to_string(),
                    ));
                };
                let reduce_axis = axis.unwrap_or(0);
                let r_iter = Var::new(format!("_r{}", depth));
                let r_expr = Expr::Var(r_iter.clone());
                // Element of the view with the reduced axis iterated by
                // `r_iter` and the remaining axes by the target iterators.
                let mut elem_iters = Vec::new();
                let mut out_pos = 0usize;
                for d in 0..view.rank() {
                    if d == reduce_axis {
                        elem_iters.push(r_expr.clone());
                    } else {
                        elem_iters.push(iter_exprs.get(out_pos).cloned().unwrap_or(cst(0)));
                        out_pos += 1;
                    }
                }
                let extent = view.extent(reduce_axis);
                if reduction.is_none() {
                    let init = Computation::assign(
                        self.fresh_name(),
                        target_ref.clone(),
                        ScalarExpr::Const(0.0),
                    );
                    nodes.push(self.wrap_loops(target, &iters, vec![Node::Computation(init)]));
                }
                let update = Computation::reduction(
                    self.fresh_name(),
                    target_ref,
                    BinOp::Add,
                    ScalarExpr::Load(view.element(&elem_iters)),
                );
                let r_loop = Node::Loop(Loop::new(
                    r_iter,
                    cst(0),
                    extent,
                    vec![Node::Computation(update)],
                ));
                nodes.push(self.wrap_loops(target, &iters, vec![r_loop]));
            }
            other => {
                let scalar = self.lower_elementwise(other, &iter_exprs)?;
                let comp = match reduction {
                    Some(op) => Computation::reduction(self.fresh_name(), target_ref, op, scalar),
                    None => Computation::assign(self.fresh_name(), target_ref, scalar),
                };
                nodes.push(self.wrap_loops(target, &iters, vec![Node::Computation(comp)]));
            }
        }
        Ok(nodes)
    }

    fn wrap_loops(&self, target: &NpTarget, iters: &[Var], mut body: Vec<Node>) -> Node {
        // Innermost dimension first when folding from the inside out.
        for (d, iter) in iters.iter().enumerate().rev() {
            let extent = target.extent(d);
            body = vec![Node::Loop(Loop::new(iter.clone(), cst(0), extent, body))];
        }
        match body.into_iter().next() {
            Some(node) => node,
            // Rank-0 target: a single scalar statement without loops.
            None => unreachable!("wrap_loops always receives a body"),
        }
    }

    fn lower_elementwise(&mut self, value: &NpExpr, iters: &[Expr]) -> Result<ScalarExpr> {
        match value {
            NpExpr::View(v) => {
                let used = &iters[..v.rank().min(iters.len())];
                Ok(ScalarExpr::Load(v.element(used)))
            }
            NpExpr::Const(c) => Ok(ScalarExpr::Const(*c)),
            NpExpr::Param(p) => Ok(ScalarExpr::Param(p.clone())),
            NpExpr::Binary(op, a, b) => Ok(ScalarExpr::Binary(
                *op,
                Box::new(self.lower_elementwise(a, iters)?),
                Box::new(self.lower_elementwise(b, iters)?),
            )),
            NpExpr::MatMul(_, _) | NpExpr::Sum(_, _) => Err(IrError::Invalid(
                "matmul/sum must be the top-level expression of a statement".to_string(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::var;

    /// `D = alpha * (A @ B)` is not directly expressible (matmul must be top
    /// level), so the NPBench-style formulation uses two statements.
    fn gemm_py() -> NumpyProgram {
        let p = NumpyProgram::new("gemm_py")
            .param("NI", 6)
            .param("NJ", 5)
            .param("NK", 4)
            .scalar("alpha", 1.5)
            .scalar("beta", 1.2)
            .array("A", &["NI", "NK"])
            .array("B", &["NK", "NJ"])
            .array("C", &["NI", "NJ"]);
        let a = ArrayView::whole("A", &p.extents("A").unwrap());
        let b = ArrayView::whole("B", &p.extents("B").unwrap());
        let c = ArrayView::whole("C", &p.extents("C").unwrap());
        p.stmt(NpStmt::Assign {
            target: c.clone(),
            value: NpExpr::View(c.clone()).mul(NpExpr::Param(Var::new("beta"))),
        })
        .stmt(NpStmt::AugAssign {
            target: c,
            op: BinOp::Add,
            value: NpExpr::View(a).matmul(NpExpr::View(b)),
        })
    }

    #[test]
    fn gemm_lowering_structure() {
        let (program, ops) = gemm_py().lower().unwrap();
        assert!(program.validate().is_ok());
        // statement 1: one 2-deep nest; statement 2: one 3-deep nest
        // (no init because it is an AugAssign).
        assert_eq!(program.loop_nests().len(), 2);
        assert_eq!(program.max_depth(), 3);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].kind, FrameworkOpKind::Elementwise);
        assert_eq!(ops[1].kind, FrameworkOpKind::MatMul);
        assert_eq!(ops[0].output_elements, 30);
    }

    #[test]
    fn plain_matmul_assignment_adds_init_nest() {
        let p = NumpyProgram::new("mm")
            .param("N", 4)
            .array("A", &["N", "N"])
            .array("B", &["N", "N"])
            .array("C", &["N", "N"]);
        let a = ArrayView::whole("A", &p.extents("A").unwrap());
        let b = ArrayView::whole("B", &p.extents("B").unwrap());
        let c = ArrayView::whole("C", &p.extents("C").unwrap());
        let (program, _) = p
            .stmt(NpStmt::Assign {
                target: c,
                value: NpExpr::View(a).matmul(NpExpr::View(b)),
            })
            .lower()
            .unwrap();
        assert_eq!(program.loop_nests().len(), 2);
        assert_eq!(program.computations().len(), 2);
        assert!(program.computations()[0].reduction.is_none());
        assert_eq!(program.computations()[1].reduction, Some(BinOp::Add));
    }

    #[test]
    fn triangular_slices_like_npbench_syrk() {
        // for i in range(N): C[i, :i+1] += alpha * A[i, k-ish] broadcast —
        // simplified to C[i, :i+1] *= beta as in the NPBench SYRK prologue.
        let p = NumpyProgram::new("syrk_prologue")
            .param("N", 8)
            .param("M", 6)
            .scalar("beta", 1.2)
            .array("C", &["N", "N"]);
        let body = NpStmt::AugAssign {
            target: ArrayView::sliced(
                "C",
                vec![
                    Range::index(var("i")),
                    Range::new(cst(0), var("i") + cst(1)),
                ],
            ),
            op: BinOp::Mul,
            value: NpExpr::Param(Var::new("beta")),
        };
        let (program, ops) = p
            .stmt(NpStmt::For {
                iter: Var::new("i"),
                lower: cst(0),
                upper: var("N"),
                body: vec![body],
            })
            .lower()
            .unwrap();
        assert!(program.validate().is_ok());
        // one explicit python loop containing one generated 1-D nest.
        assert_eq!(program.max_depth(), 2);
        let comp = program.computations()[0];
        assert_eq!(comp.reduction, Some(BinOp::Mul));
        // the inner loop bound is triangular (depends on i).
        let nest = program.loop_nests()[0];
        let inner = nest.body[0].as_loop().unwrap();
        assert!(inner.upper.uses_var(&Var::new("i")));
        assert_eq!(ops[0].invocations, 8);
    }

    #[test]
    fn transposed_view_swaps_indices() {
        let p = NumpyProgram::new("t")
            .param("N", 4)
            .param("M", 3)
            .array("A", &["N", "M"])
            .array("B", &["M", "N"]);
        let a = ArrayView::whole("A", &p.extents("A").unwrap()).t();
        let b = ArrayView::whole("B", &p.extents("B").unwrap());
        let (program, _) = p
            .stmt(NpStmt::Assign {
                target: b,
                value: NpExpr::View(a),
            })
            .lower()
            .unwrap();
        let comp = program.computations()[0];
        // B[_i0_0][_i0_1] = A[_i0_1][_i0_0]
        let load = &comp.value.loads()[0];
        assert_eq!(load.array.as_str(), "A");
        assert_eq!(comp.target.indices[0], load.indices[1]);
        assert_eq!(comp.target.indices[1], load.indices[0]);
    }

    #[test]
    fn axis_sum_lowering() {
        let p = NumpyProgram::new("rowsum")
            .param("N", 4)
            .param("M", 5)
            .array("A", &["N", "M"])
            .array("s", &["N"]);
        let a = ArrayView::whole("A", &p.extents("A").unwrap());
        let s = ArrayView::whole("s", &p.extents("s").unwrap());
        let (program, ops) = p
            .stmt(NpStmt::Assign {
                target: s,
                value: NpExpr::Sum(Box::new(NpExpr::View(a)), Some(1)),
            })
            .lower()
            .unwrap();
        assert!(program.validate().is_ok());
        assert_eq!(program.computations().len(), 2); // init + accumulate
        assert_eq!(ops[0].kind, FrameworkOpKind::Reduction);
        assert_eq!(program.max_depth(), 2);
    }

    #[test]
    fn matmul_inside_elementwise_is_rejected() {
        let p = NumpyProgram::new("bad")
            .param("N", 4)
            .array("A", &["N", "N"])
            .array("C", &["N", "N"]);
        let a = ArrayView::whole("A", &p.extents("A").unwrap());
        let c = ArrayView::whole("C", &p.extents("C").unwrap());
        let result = p
            .stmt(NpStmt::Assign {
                target: c.clone(),
                value: NpExpr::View(a.clone())
                    .matmul(NpExpr::View(a))
                    .add(NpExpr::Const(1.0)),
            })
            .lower();
        assert!(result.is_err());
    }

    #[test]
    fn matvec_lowering() {
        let p = NumpyProgram::new("mv")
            .param("N", 4)
            .param("M", 3)
            .array("A", &["N", "M"])
            .array("x", &["M"])
            .array("y", &["N"]);
        let a = ArrayView::whole("A", &p.extents("A").unwrap());
        let x = ArrayView::whole("x", &p.extents("x").unwrap());
        let y = ArrayView::whole("y", &p.extents("y").unwrap());
        let (program, _) = p
            .stmt(NpStmt::Assign {
                target: y,
                value: NpExpr::View(a).matmul(NpExpr::View(x)),
            })
            .lower()
            .unwrap();
        assert!(program.validate().is_ok());
        assert_eq!(program.max_depth(), 2);
    }
}
