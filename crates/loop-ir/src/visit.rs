//! Traversal utilities over loop-nest trees.

use crate::expr::Var;
use crate::nest::{Computation, Loop, Node};

/// A computation together with its enclosing loops, outermost first.
///
/// This corresponds to the paper's notation `comp[i, j, k]`: a computation
/// nested inside loops `i`, `j`, `k` where `i` is outermost.
#[derive(Clone, Debug)]
pub struct CompContext<'a> {
    /// The computation.
    pub computation: &'a Computation,
    /// The enclosing loops, outermost first.
    pub loops: Vec<&'a Loop>,
}

impl<'a> CompContext<'a> {
    /// Iterator variables of the enclosing loops, outermost first.
    pub fn iterators(&self) -> Vec<Var> {
        self.loops.iter().map(|l| l.iter.clone()).collect()
    }

    /// Nesting depth of the computation.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }
}

/// Collects every computation of a node sequence with its loop context, in
/// execution order.
pub fn walk_computations(nodes: &[Node]) -> Vec<CompContext<'_>> {
    let mut out = Vec::new();
    let mut stack: Vec<&Loop> = Vec::new();
    for node in nodes {
        walk_node(node, &mut stack, &mut out);
    }
    out
}

fn walk_node<'a>(node: &'a Node, stack: &mut Vec<&'a Loop>, out: &mut Vec<CompContext<'a>>) {
    match node {
        Node::Loop(l) => {
            stack.push(l);
            for n in &l.body {
                walk_node(n, stack, out);
            }
            stack.pop();
        }
        Node::Computation(c) => out.push(CompContext {
            computation: c,
            loops: stack.clone(),
        }),
        Node::Call(_) => {}
    }
}

/// Collects every loop of a node sequence in pre-order.
pub fn walk_loops(nodes: &[Node]) -> Vec<&Loop> {
    let mut out = Vec::new();
    for node in nodes {
        collect_loops(node, &mut out);
    }
    out
}

fn collect_loops<'a>(node: &'a Node, out: &mut Vec<&'a Loop>) {
    if let Node::Loop(l) = node {
        out.push(l);
        for n in &l.body {
            collect_loops(n, out);
        }
    }
}

/// Applies a mutation to every loop of a node tree (pre-order).
pub fn for_each_loop_mut(nodes: &mut [Node], f: &mut impl FnMut(&mut Loop)) {
    for node in nodes {
        if let Node::Loop(l) = node {
            f(l);
            for_each_loop_mut(&mut l.body, f);
        }
    }
}

/// Applies a mutation to every computation of a node tree (execution order).
pub fn for_each_computation_mut(nodes: &mut [Node], f: &mut impl FnMut(&mut Computation)) {
    for node in nodes {
        match node {
            Node::Loop(l) => for_each_computation_mut(&mut l.body, f),
            Node::Computation(c) => f(c),
            Node::Call(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayRef;
    use crate::expr::{cst, var};
    use crate::nest::for_loop;
    use crate::scalar::{fconst, load};

    fn two_statement_nest() -> Vec<Node> {
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("B", vec![var("i"), var("j")]),
            load("A", vec![var("i"), var("j")]),
        );
        let s2 = Computation::assign(
            "S2",
            ArrayRef::new("C", vec![var("i")]),
            fconst(0.0),
        );
        vec![for_loop(
            "i",
            cst(0),
            var("N"),
            vec![
                for_loop("j", cst(0), var("M"), vec![Node::Computation(s1)]),
                Node::Computation(s2),
            ],
        )]
    }

    #[test]
    fn walk_computations_reports_context() {
        let nodes = two_statement_nest();
        let ctxs = walk_computations(&nodes);
        assert_eq!(ctxs.len(), 2);
        assert_eq!(ctxs[0].iterators(), vec![Var::new("i"), Var::new("j")]);
        assert_eq!(ctxs[0].depth(), 2);
        assert_eq!(ctxs[1].iterators(), vec![Var::new("i")]);
        assert_eq!(ctxs[1].depth(), 1);
    }

    #[test]
    fn walk_loops_preorder() {
        let nodes = two_statement_nest();
        let loops = walk_loops(&nodes);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].iter, Var::new("i"));
        assert_eq!(loops[1].iter, Var::new("j"));
    }

    #[test]
    fn mutation_visitors_touch_all_nodes() {
        let mut nodes = two_statement_nest();
        let mut loop_count = 0;
        for_each_loop_mut(&mut nodes, &mut |l| {
            l.schedule.parallel = true;
            loop_count += 1;
        });
        assert_eq!(loop_count, 2);
        let mut comp_count = 0;
        for_each_computation_mut(&mut nodes, &mut |c| {
            c.name.push('!');
            comp_count += 1;
        });
        assert_eq!(comp_count, 2);
        let ctxs = walk_computations(&nodes);
        assert!(ctxs.iter().all(|c| c.computation.name.ends_with('!')));
        assert!(walk_loops(&nodes).iter().all(|l| l.schedule.parallel));
    }

    #[test]
    fn execution_order_is_preserved() {
        let nodes = two_statement_nest();
        let names: Vec<&str> = walk_computations(&nodes)
            .iter()
            .map(|c| c.computation.name.as_str())
            .collect();
        assert_eq!(names, vec!["S1", "S2"]);
    }
}
