//! Traversal utilities over loop-nest trees, including the structural hash
//! used by the cost-model memoization and the search's candidate dedupe.

use std::hash::{Hash, Hasher};

use crate::expr::Var;
use crate::nest::{BlasCall, Computation, Loop, Node};
use crate::scalar::ScalarExpr;

/// A computation together with its enclosing loops, outermost first.
///
/// This corresponds to the paper's notation `comp[i, j, k]`: a computation
/// nested inside loops `i`, `j`, `k` where `i` is outermost.
#[derive(Clone, Debug)]
pub struct CompContext<'a> {
    /// The computation.
    pub computation: &'a Computation,
    /// The enclosing loops, outermost first.
    pub loops: Vec<&'a Loop>,
}

impl<'a> CompContext<'a> {
    /// Iterator variables of the enclosing loops, outermost first.
    pub fn iterators(&self) -> Vec<Var> {
        self.loops.iter().map(|l| l.iter.clone()).collect()
    }

    /// Nesting depth of the computation.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }
}

/// Collects every computation of a node sequence with its loop context, in
/// execution order.
pub fn walk_computations(nodes: &[Node]) -> Vec<CompContext<'_>> {
    let mut out = Vec::new();
    let mut stack: Vec<&Loop> = Vec::new();
    for node in nodes {
        walk_node(node, &mut stack, &mut out);
    }
    out
}

fn walk_node<'a>(node: &'a Node, stack: &mut Vec<&'a Loop>, out: &mut Vec<CompContext<'a>>) {
    match node {
        Node::Loop(l) => {
            stack.push(l);
            for n in &l.body {
                walk_node(n, stack, out);
            }
            stack.pop();
        }
        Node::Computation(c) => out.push(CompContext {
            computation: c,
            loops: stack.clone(),
        }),
        Node::Call(_) => {}
    }
}

/// Collects every loop of a node sequence in pre-order.
pub fn walk_loops(nodes: &[Node]) -> Vec<&Loop> {
    let mut out = Vec::new();
    for node in nodes {
        collect_loops(node, &mut out);
    }
    out
}

fn collect_loops<'a>(node: &'a Node, out: &mut Vec<&'a Loop>) {
    if let Node::Loop(l) = node {
        out.push(l);
        for n in &l.body {
            collect_loops(n, out);
        }
    }
}

/// Applies a mutation to every loop of a node tree (pre-order).
pub fn for_each_loop_mut(nodes: &mut [Node], f: &mut impl FnMut(&mut Loop)) {
    for node in nodes {
        if let Node::Loop(l) = node {
            f(l);
            for_each_loop_mut(&mut l.body, f);
        }
    }
}

/// Applies a mutation to every computation of a node tree (execution order).
pub fn for_each_computation_mut(nodes: &mut [Node], f: &mut impl FnMut(&mut Computation)) {
    for node in nodes {
        match node {
            Node::Loop(l) => for_each_computation_mut(&mut l.body, f),
            Node::Computation(c) => f(c),
            Node::Call(_) => {}
        }
    }
}

/// A deterministic 64-bit FNV-1a hasher.
///
/// `std::collections::hash_map::DefaultHasher` would also be deterministic,
/// but FNV keeps the structural hash independent of standard-library
/// implementation details, so hashes are stable across Rust versions — they
/// may be persisted (e.g. in tuning databases) and compared across runs.
#[derive(Debug, Clone)]
pub struct StructuralHasher(u64);

impl Default for StructuralHasher {
    fn default() -> Self {
        StructuralHasher(0xCBF2_9CE4_8422_2325)
    }
}

impl Hasher for StructuralHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    // The integer methods are pinned to fixed-width little-endian encodings:
    // the defaults write native-endian, platform-width bytes, which would
    // make hashes differ across architectures and break the persistence
    // guarantee above. `usize`/`isize` widen to 64 bits for the same reason.
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        self.write(&(i as u64).to_le_bytes());
    }
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

/// Structural hash of a sequence of nodes (a program body or a loop body).
///
/// Two node trees collide only if they are structurally identical: same loop
/// shapes (iterators, bounds, steps, schedule annotations), same computation
/// targets, reductions and value expressions, same library calls. Statement
/// *names* and [`crate::nest::CompId`]s are deliberately excluded — they are
/// labels, not structure, so renamed copies of a nest share one hash (and
/// one memoized cost).
pub fn structural_hash_nodes(nodes: &[Node]) -> u64 {
    let mut hasher = StructuralHasher::default();
    nodes.len().hash(&mut hasher);
    for node in nodes {
        hash_node(node, &mut hasher);
    }
    hasher.finish()
}

/// Structural hash of a single node. See [`structural_hash_nodes`].
pub fn structural_hash_node(node: &Node) -> u64 {
    let mut hasher = StructuralHasher::default();
    hash_node(node, &mut hasher);
    hasher.finish()
}

fn hash_node(node: &Node, h: &mut impl Hasher) {
    match node {
        Node::Loop(l) => {
            0u8.hash(h);
            hash_loop(l, h);
        }
        Node::Computation(c) => {
            1u8.hash(h);
            hash_computation(c, h);
        }
        Node::Call(call) => {
            2u8.hash(h);
            hash_call(call, h);
        }
    }
}

fn hash_loop(l: &Loop, h: &mut impl Hasher) {
    l.iter.hash(h);
    l.lower.hash(h);
    l.upper.hash(h);
    l.step.hash(h);
    l.schedule.hash(h);
    l.body.len().hash(h);
    for node in &l.body {
        hash_node(node, h);
    }
}

fn hash_computation(c: &Computation, h: &mut impl Hasher) {
    // `id` and `name` are intentionally not hashed; see
    // [`structural_hash_nodes`].
    c.target.hash(h);
    c.reduction.hash(h);
    hash_scalar(&c.value, h);
}

fn hash_call(call: &BlasCall, h: &mut impl Hasher) {
    call.kind.hash(h);
    call.output.hash(h);
    call.inputs.hash(h);
    call.dims.hash(h);
    hash_scalar(&call.alpha, h);
    hash_scalar(&call.beta, h);
}

/// Hashes a scalar expression. [`ScalarExpr`] cannot derive `Hash` because
/// of its `f64` literals; they are hashed by bit pattern (`-0.0` and `0.0`
/// therefore hash differently, which errs on the safe side for memoization).
fn hash_scalar(e: &ScalarExpr, h: &mut impl Hasher) {
    match e {
        ScalarExpr::Load(r) => {
            0u8.hash(h);
            r.hash(h);
        }
        ScalarExpr::Const(c) => {
            1u8.hash(h);
            c.to_bits().hash(h);
        }
        ScalarExpr::Param(p) => {
            2u8.hash(h);
            p.hash(h);
        }
        ScalarExpr::Index(e) => {
            3u8.hash(h);
            e.hash(h);
        }
        ScalarExpr::Unary(op, a) => {
            4u8.hash(h);
            op.hash(h);
            hash_scalar(a, h);
        }
        ScalarExpr::Binary(op, a, b) => {
            5u8.hash(h);
            op.hash(h);
            hash_scalar(a, h);
            hash_scalar(b, h);
        }
        ScalarExpr::Select {
            lhs,
            cmp,
            rhs,
            then,
            otherwise,
        } => {
            6u8.hash(h);
            cmp.hash(h);
            hash_scalar(lhs, h);
            hash_scalar(rhs, h);
            hash_scalar(then, h);
            hash_scalar(otherwise, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayRef;
    use crate::expr::{cst, var};
    use crate::nest::for_loop;
    use crate::scalar::{fconst, load};

    fn two_statement_nest() -> Vec<Node> {
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("B", vec![var("i"), var("j")]),
            load("A", vec![var("i"), var("j")]),
        );
        let s2 = Computation::assign("S2", ArrayRef::new("C", vec![var("i")]), fconst(0.0));
        vec![for_loop(
            "i",
            cst(0),
            var("N"),
            vec![
                for_loop("j", cst(0), var("M"), vec![Node::Computation(s1)]),
                Node::Computation(s2),
            ],
        )]
    }

    #[test]
    fn walk_computations_reports_context() {
        let nodes = two_statement_nest();
        let ctxs = walk_computations(&nodes);
        assert_eq!(ctxs.len(), 2);
        assert_eq!(ctxs[0].iterators(), vec![Var::new("i"), Var::new("j")]);
        assert_eq!(ctxs[0].depth(), 2);
        assert_eq!(ctxs[1].iterators(), vec![Var::new("i")]);
        assert_eq!(ctxs[1].depth(), 1);
    }

    #[test]
    fn walk_loops_preorder() {
        let nodes = two_statement_nest();
        let loops = walk_loops(&nodes);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].iter, Var::new("i"));
        assert_eq!(loops[1].iter, Var::new("j"));
    }

    #[test]
    fn mutation_visitors_touch_all_nodes() {
        let mut nodes = two_statement_nest();
        let mut loop_count = 0;
        for_each_loop_mut(&mut nodes, &mut |l| {
            l.schedule.parallel = true;
            loop_count += 1;
        });
        assert_eq!(loop_count, 2);
        let mut comp_count = 0;
        for_each_computation_mut(&mut nodes, &mut |c| {
            c.name.push('!');
            comp_count += 1;
        });
        assert_eq!(comp_count, 2);
        let ctxs = walk_computations(&nodes);
        assert!(ctxs.iter().all(|c| c.computation.name.ends_with('!')));
        assert!(walk_loops(&nodes).iter().all(|l| l.schedule.parallel));
    }

    #[test]
    fn execution_order_is_preserved() {
        let nodes = two_statement_nest();
        let names: Vec<&str> = walk_computations(&nodes)
            .iter()
            .map(|c| c.computation.name.as_str())
            .collect();
        assert_eq!(names, vec!["S1", "S2"]);
    }

    #[test]
    fn structural_hash_ignores_names_but_not_structure() {
        let nodes = two_statement_nest();
        let base = structural_hash_nodes(&nodes);
        assert_eq!(base, structural_hash_nodes(&two_statement_nest()));

        // Renaming statements does not change the hash…
        let mut renamed = two_statement_nest();
        for_each_computation_mut(&mut renamed, &mut |c| c.name = format!("{}x", c.name));
        assert_eq!(base, structural_hash_nodes(&renamed));

        // …but a schedule annotation, a changed bound or a changed value do.
        let mut parallel = two_statement_nest();
        for_each_loop_mut(&mut parallel, &mut |l| l.schedule.parallel = true);
        assert_ne!(base, structural_hash_nodes(&parallel));

        let mut rebound = two_statement_nest();
        rebound[0].as_loop_mut().unwrap().upper = var("K");
        assert_ne!(base, structural_hash_nodes(&rebound));

        let mut revalued = two_statement_nest();
        for_each_computation_mut(&mut revalued, &mut |c| c.value = fconst(42.0));
        assert_ne!(base, structural_hash_nodes(&revalued));
    }

    #[test]
    fn structural_hash_distinguishes_node_kinds_and_order() {
        let nodes = two_statement_nest();
        let single = structural_hash_node(&nodes[0]);
        assert_ne!(single, structural_hash_nodes(&nodes));
        let mut swapped = two_statement_nest();
        let body = &mut swapped[0].as_loop_mut().unwrap().body;
        body.reverse();
        assert_ne!(
            structural_hash_nodes(&nodes),
            structural_hash_nodes(&swapped)
        );
    }
}
