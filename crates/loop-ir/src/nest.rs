//! Loop-nest tree nodes: loops, computations and library calls.
//!
//! The paper characterizes a loop nest as a tree of loop and computation
//! nodes (§2, Fig. 2). [`Node`] is that tree. Loops carry a symbolic iteration
//! domain and schedule annotations (parallel / vectorized / unrolled) that the
//! auto-schedulers attach; computations carry exactly one write target and a
//! scalar value expression.

use std::collections::BTreeSet;
use std::fmt;

use crate::array::{Access, ArrayRef};
use crate::expr::{cst, Expr, Var};
use crate::scalar::{BinOp, ScalarExpr};

/// Schedule annotations attached to a loop by a scheduler.
///
/// The normalization passes never set these; they are produced by the
/// optimization recipes (parallelization, vectorization, unrolling) that the
/// daisy scheduler and the baselines apply after normalization.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct LoopSchedule {
    /// Execute iterations of this loop on multiple threads.
    pub parallel: bool,
    /// Execute the loop with SIMD instructions.
    pub vectorize: bool,
    /// Unroll factor (1 = no unrolling).
    pub unroll: u32,
}

impl LoopSchedule {
    /// The default schedule: sequential, scalar, not unrolled.
    pub fn sequential() -> Self {
        LoopSchedule {
            parallel: false,
            vectorize: false,
            unroll: 1,
        }
    }

    /// A parallel schedule.
    pub fn parallel() -> Self {
        LoopSchedule {
            parallel: true,
            ..Self::sequential()
        }
    }

    /// A vectorized schedule.
    pub fn vectorized() -> Self {
        LoopSchedule {
            vectorize: true,
            ..Self::sequential()
        }
    }
}

/// A counted loop with a symbolic iteration domain `lower <= iter < upper`
/// advancing by `step`.
#[derive(Clone, PartialEq, Debug)]
pub struct Loop {
    /// The loop iterator variable.
    pub iter: Var,
    /// Inclusive lower bound.
    pub lower: Expr,
    /// Exclusive upper bound.
    pub upper: Expr,
    /// Positive step.
    pub step: i64,
    /// Ordered loop body.
    pub body: Vec<Node>,
    /// Scheduler annotations.
    pub schedule: LoopSchedule,
}

impl Loop {
    /// Creates a sequential loop with step 1.
    pub fn new(iter: impl Into<Var>, lower: Expr, upper: Expr, body: Vec<Node>) -> Self {
        Loop {
            iter: iter.into(),
            lower,
            upper,
            step: 1,
            body,
            schedule: LoopSchedule::sequential(),
        }
    }

    /// Returns the trip count under the given parameter bindings, if it can
    /// be evaluated.
    pub fn trip_count(&self, bindings: &std::collections::BTreeMap<Var, i64>) -> Option<i64> {
        let lo = self.lower.eval(bindings)?;
        let hi = self.upper.eval(bindings)?;
        if self.step <= 0 {
            return None;
        }
        Some(((hi - lo).max(0) + self.step - 1) / self.step)
    }

    /// Returns all computations contained (transitively) in this loop.
    pub fn computations(&self) -> Vec<&Computation> {
        let mut out = Vec::new();
        for node in &self.body {
            node.collect_computations(&mut out);
        }
        out
    }

    /// Returns the iterators of this loop and all nested loops in in-order
    /// traversal order (the order used by the stride-minimization pass).
    pub fn nested_iterators(&self) -> Vec<Var> {
        let mut out = vec![self.iter.clone()];
        for node in &self.body {
            node.collect_iterators(&mut out);
        }
        out
    }

    /// True if this loop's body contains exactly one node which is itself a
    /// loop or computation, i.e. the nest is perfect down to this level.
    pub fn is_perfect_nest(&self) -> bool {
        match self.body.as_slice() {
            [Node::Loop(inner)] => inner.is_perfect_nest(),
            [Node::Computation(_)] => true,
            body => body.iter().all(|n| matches!(n, Node::Computation(_))),
        }
    }

    /// Depth of the loop nest rooted at this loop (a loop with no nested
    /// loops has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .body
            .iter()
            .map(Node::max_loop_depth)
            .max()
            .unwrap_or(0)
    }
}

/// Identifier of a computation inside a program. Identifiers are unique per
/// program and survive transformations so that optimization recipes can refer
/// to statements stably.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CompId(pub u32);

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A computation: exactly one write of a scalar value to a data container,
/// possibly as a reduction (`target op= value`).
#[derive(Clone, PartialEq, Debug)]
pub struct Computation {
    /// Stable identifier, assigned by the program builder.
    pub id: CompId,
    /// Human-readable statement name (`S1`, `S2`, …).
    pub name: String,
    /// The written element.
    pub target: ArrayRef,
    /// `Some(op)` if the statement is a reduction update
    /// (`target = target op value`), `None` for a plain assignment.
    pub reduction: Option<BinOp>,
    /// The value written (or combined into) the target.
    pub value: ScalarExpr,
}

impl Computation {
    /// Creates a plain assignment `target = value`.
    pub fn assign(name: impl Into<String>, target: ArrayRef, value: ScalarExpr) -> Self {
        Computation {
            id: CompId::default(),
            name: name.into(),
            target,
            reduction: None,
            value,
        }
    }

    /// Creates a reduction update `target = target op value`.
    pub fn reduction(
        name: impl Into<String>,
        target: ArrayRef,
        op: BinOp,
        value: ScalarExpr,
    ) -> Self {
        Computation {
            id: CompId::default(),
            name: name.into(),
            target,
            reduction: Some(op),
            value,
        }
    }

    /// Every memory access performed by the computation: all loads of the
    /// value expression, plus a read of the target when the statement is a
    /// reduction, plus the write of the target.
    pub fn accesses(&self) -> Vec<Access> {
        let mut out: Vec<Access> = self.value.loads().into_iter().map(Access::read).collect();
        if self.reduction.is_some() {
            out.push(Access::read(self.target.clone()));
        }
        out.push(Access::write(self.target.clone()));
        out
    }

    /// The read accesses of the computation.
    pub fn reads(&self) -> Vec<ArrayRef> {
        let mut out = self.value.loads();
        if self.reduction.is_some() {
            out.push(self.target.clone());
        }
        out
    }

    /// The single write access of the computation.
    pub fn write(&self) -> &ArrayRef {
        &self.target
    }

    /// Names of all arrays touched by the computation.
    pub fn arrays(&self) -> BTreeSet<Var> {
        let mut out: BTreeSet<Var> = self.reads().into_iter().map(|r| r.array).collect();
        out.insert(self.target.array.clone());
        out
    }

    /// Iterator variables referenced by subscripts of this computation.
    pub fn referenced_vars(&self) -> BTreeSet<Var> {
        let mut out = self.value.index_vars();
        for idx in &self.target.indices {
            out.extend(idx.vars());
        }
        out
    }

    /// Renames an iterator in every access of the computation.
    pub fn rename_iterator(&self, from: &Var, to: &Var) -> Computation {
        let replacement = Expr::Var(to.clone());
        Computation {
            id: self.id,
            name: self.name.clone(),
            target: self.target.substitute(from, &replacement),
            reduction: self.reduction,
            value: self.value.substitute_index(from, &replacement),
        }
    }

    /// Floating point operations per dynamic execution of the statement.
    pub fn flops(&self) -> u64 {
        self.value.flop_count() + u64::from(self.reduction.is_some())
    }
}

impl fmt::Display for Computation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reduction {
            Some(op) => write!(f, "{} {}= {}", self.target, op, self.value),
            None => write!(f, "{} = {}", self.target, self.value),
        }
    }
}

/// The BLAS kernels recognized by idiom detection (§4, "Seeding a Scheduling
/// Database": BLAS-3 loop nests are replaced by matching library calls).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BlasKind {
    /// General matrix-matrix multiply `C += alpha * A * B` (optionally scaled).
    Gemm,
    /// Symmetric rank-k update `C += alpha * A * A^T`.
    Syrk,
    /// Symmetric rank-2k update `C += alpha * (A*B^T + B*A^T)`.
    Syr2k,
    /// General matrix-vector multiply `y += alpha * A * x`.
    Gemv,
}

impl fmt::Display for BlasKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BlasKind::Gemm => "dgemm",
            BlasKind::Syrk => "dsyrk",
            BlasKind::Syr2k => "dsyr2k",
            BlasKind::Gemv => "dgemv",
        };
        f.write_str(s)
    }
}

/// A call to an optimized library kernel, inserted by idiom detection in
/// place of a recognized loop nest.
#[derive(Clone, PartialEq, Debug)]
pub struct BlasCall {
    /// Which kernel is called.
    pub kind: BlasKind,
    /// Output array name.
    pub output: Var,
    /// Input array names in kernel order (e.g. `[A, B]` for GEMM).
    pub inputs: Vec<Var>,
    /// Problem dimensions in kernel order (e.g. `[M, N, K]` for GEMM).
    pub dims: Vec<Expr>,
    /// Scaling factor applied to the product term.
    pub alpha: ScalarExpr,
    /// Scaling factor applied to the existing output (`C = beta*C + …`);
    /// `1.0` when the nest only accumulates.
    pub beta: ScalarExpr,
}

impl BlasCall {
    /// Floating-point operations performed by the call under the given
    /// parameter bindings.
    pub fn flops(&self, bindings: &std::collections::BTreeMap<Var, i64>) -> Option<u64> {
        let dims: Option<Vec<i64>> = self.dims.iter().map(|d| d.eval(bindings)).collect();
        let dims = dims?;
        let count = match self.kind {
            BlasKind::Gemm | BlasKind::Syr2k => 2 * dims.iter().product::<i64>(),
            BlasKind::Syrk => dims.iter().product::<i64>(),
            BlasKind::Gemv => 2 * dims.iter().product::<i64>(),
        };
        u64::try_from(count.max(0)).ok()
    }
}

impl fmt::Display for BlasCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}", self.kind, self.output)?;
        for input in &self.inputs {
            write!(f, ", {input}")?;
        }
        write!(f, ")")
    }
}

/// A node of the loop-nest tree.
#[derive(Clone, PartialEq, Debug)]
pub enum Node {
    /// A loop with a body.
    Loop(Loop),
    /// A single computation.
    Computation(Computation),
    /// A call to an optimized library routine (after idiom detection).
    Call(BlasCall),
}

impl Node {
    /// Returns the contained loop, if this node is one.
    pub fn as_loop(&self) -> Option<&Loop> {
        match self {
            Node::Loop(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the contained loop mutably, if this node is one.
    pub fn as_loop_mut(&mut self) -> Option<&mut Loop> {
        match self {
            Node::Loop(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the contained computation, if this node is one.
    pub fn as_computation(&self) -> Option<&Computation> {
        match self {
            Node::Computation(c) => Some(c),
            _ => None,
        }
    }

    pub(crate) fn collect_computations<'a>(&'a self, out: &mut Vec<&'a Computation>) {
        match self {
            Node::Loop(l) => {
                for n in &l.body {
                    n.collect_computations(out);
                }
            }
            Node::Computation(c) => out.push(c),
            Node::Call(_) => {}
        }
    }

    pub(crate) fn collect_iterators(&self, out: &mut Vec<Var>) {
        if let Node::Loop(l) = self {
            out.push(l.iter.clone());
            for n in &l.body {
                n.collect_iterators(out);
            }
        }
    }

    /// Returns all computations contained in (and including) this node, in
    /// execution order.
    pub fn computations(&self) -> Vec<&Computation> {
        let mut out = Vec::new();
        self.collect_computations(&mut out);
        out
    }

    /// Maximum loop depth below (and including) this node.
    pub fn max_loop_depth(&self) -> usize {
        match self {
            Node::Loop(l) => l.depth(),
            _ => 0,
        }
    }

    /// Number of computation nodes below (and including) this node.
    pub fn computation_count(&self) -> usize {
        match self {
            Node::Loop(l) => l.body.iter().map(Node::computation_count).sum(),
            Node::Computation(_) => 1,
            Node::Call(_) => 0,
        }
    }
}

/// Builds a sequential loop node over `iter` in `[lower, upper)`.
///
/// ```
/// use loop_ir::prelude::*;
/// let node = for_loop("i", cst(0), var("N"), vec![]);
/// assert!(node.as_loop().is_some());
/// ```
pub fn for_loop(iter: impl Into<Var>, lower: Expr, upper: Expr, body: Vec<Node>) -> Node {
    Node::Loop(Loop::new(iter, lower, upper, body))
}

/// Builds a loop node annotated as parallel.
pub fn parallel_loop(iter: impl Into<Var>, lower: Expr, upper: Expr, body: Vec<Node>) -> Node {
    let mut l = Loop::new(iter, lower, upper, body);
    l.schedule.parallel = true;
    Node::Loop(l)
}

/// Builds a loop node from zero to an exclusive constant bound, a common
/// shorthand in tests.
pub fn counted_loop(iter: impl Into<Var>, n: i64, body: Vec<Node>) -> Node {
    for_loop(iter, cst(0), cst(n), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{cst, var};
    use crate::scalar::load;
    use std::collections::BTreeMap;

    fn gemm_nest() -> Loop {
        let update = Computation::reduction(
            "S1",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            BinOp::Add,
            load("A", vec![var("i"), var("k")]) * load("B", vec![var("k"), var("j")]),
        );
        Loop::new(
            "i",
            cst(0),
            var("NI"),
            vec![for_loop(
                "j",
                cst(0),
                var("NJ"),
                vec![for_loop(
                    "k",
                    cst(0),
                    var("NK"),
                    vec![Node::Computation(update)],
                )],
            )],
        )
    }

    #[test]
    fn trip_count_evaluates() {
        let l = Loop::new("i", cst(2), cst(10), vec![]);
        assert_eq!(l.trip_count(&BTreeMap::new()), Some(8));
        let mut strided = l.clone();
        strided.step = 3;
        assert_eq!(strided.trip_count(&BTreeMap::new()), Some(3));
    }

    #[test]
    fn trip_count_with_symbolic_bounds() {
        let l = Loop::new("i", cst(0), var("N"), vec![]);
        let bindings = [(Var::new("N"), 100)].into_iter().collect();
        assert_eq!(l.trip_count(&bindings), Some(100));
        assert_eq!(l.trip_count(&BTreeMap::new()), None);
    }

    #[test]
    fn nested_iterators_in_order() {
        let nest = gemm_nest();
        let iters = nest.nested_iterators();
        assert_eq!(iters, vec![Var::new("i"), Var::new("j"), Var::new("k")]);
        assert_eq!(nest.depth(), 3);
    }

    #[test]
    fn perfect_nest_detection() {
        assert!(gemm_nest().is_perfect_nest());
        let mut imperfect = gemm_nest();
        imperfect.body.push(Node::Computation(Computation::assign(
            "S2",
            ArrayRef::new("D", vec![var("i")]),
            load("C", vec![var("i"), cst(0)]),
        )));
        assert!(!imperfect.is_perfect_nest());
    }

    #[test]
    fn computation_accesses_include_reduction_read() {
        let nest = gemm_nest();
        let comps = nest.computations();
        assert_eq!(comps.len(), 1);
        let accesses = comps[0].accesses();
        // reads of A, B, C (reduction) plus write of C.
        assert_eq!(accesses.len(), 4);
        assert_eq!(accesses.iter().filter(|a| a.is_write()).count(), 1);
    }

    #[test]
    fn computation_arrays_and_vars() {
        let nest = gemm_nest();
        let comp = nest.computations()[0];
        let arrays = comp.arrays();
        assert!(arrays.contains(&Var::new("A")));
        assert!(arrays.contains(&Var::new("B")));
        assert!(arrays.contains(&Var::new("C")));
        let vars = comp.referenced_vars();
        assert_eq!(vars.len(), 3);
    }

    #[test]
    fn rename_iterator_updates_all_accesses() {
        let nest = gemm_nest();
        let comp = nest.computations()[0].clone();
        let renamed = comp.rename_iterator(&Var::new("k"), &Var::new("kk"));
        assert!(!renamed.referenced_vars().contains(&Var::new("k")));
        assert!(renamed.referenced_vars().contains(&Var::new("kk")));
    }

    #[test]
    fn flops_count_reduction() {
        let nest = gemm_nest();
        let comp = nest.computations()[0];
        // one multiply in the value plus the reduction add.
        assert_eq!(comp.flops(), 2);
    }

    #[test]
    fn blas_call_flops() {
        let call = BlasCall {
            kind: BlasKind::Gemm,
            output: Var::new("C"),
            inputs: vec![Var::new("A"), Var::new("B")],
            dims: vec![var("NI"), var("NJ"), var("NK")],
            alpha: crate::scalar::fconst(1.0),
            beta: crate::scalar::fconst(1.0),
        };
        let bindings = [
            (Var::new("NI"), 10),
            (Var::new("NJ"), 20),
            (Var::new("NK"), 30),
        ]
        .into_iter()
        .collect();
        assert_eq!(call.flops(&bindings), Some(2 * 10 * 20 * 30));
        assert_eq!(format!("{call}"), "dgemm(C, A, B)");
    }

    #[test]
    fn node_helpers() {
        let n = counted_loop("i", 4, vec![]);
        assert!(n.as_loop().is_some());
        assert!(n.as_computation().is_none());
        assert_eq!(n.computation_count(), 0);
        let p = parallel_loop("i", cst(0), cst(4), vec![]);
        assert!(p.as_loop().unwrap().schedule.parallel);
    }

    #[test]
    fn schedule_constructors() {
        assert!(LoopSchedule::parallel().parallel);
        assert!(LoopSchedule::vectorized().vectorize);
        assert_eq!(LoopSchedule::sequential().unroll, 1);
    }

    #[test]
    fn computation_display() {
        let nest = gemm_nest();
        let comp = nest.computations()[0];
        let text = format!("{comp}");
        assert!(text.contains("C[i][j] += "));
    }
}
