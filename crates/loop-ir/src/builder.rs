//! Ergonomic construction of [`Program`]s.

use std::collections::BTreeMap;

use crate::array::Array;
use crate::error::{IrError, Result};
use crate::expr::{Expr, Var};
use crate::nest::Node;
use crate::program::Program;

/// A non-consuming builder for [`Program`]s.
///
/// ```
/// use loop_ir::prelude::*;
///
/// let program = Program::builder("copy")
///     .param("N", 32)
///     .array("A", &["N"])
///     .array("B", &["N"])
///     .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(
///         Computation::assign("S0", ArrayRef::new("B", vec![var("i")]),
///                             load("A", vec![var("i")])),
///     )]))
///     .build()?;
/// assert_eq!(program.param("N"), Some(32));
/// # Ok::<(), loop_ir::IrError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    name: String,
    params: BTreeMap<Var, i64>,
    scalar_params: BTreeMap<Var, f64>,
    arrays: BTreeMap<Var, Array>,
    body: Vec<Node>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Creates a builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares an integer size parameter with its concrete value.
    pub fn param(mut self, name: &str, value: i64) -> Self {
        let key = Var::new(name);
        if self.params.insert(key, value).is_some() {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Declares a floating-point scalar parameter with its concrete value.
    pub fn scalar(mut self, name: &str, value: f64) -> Self {
        let key = Var::new(name);
        if self.scalar_params.insert(key, value).is_some() {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Declares an array whose extents are named parameters.
    pub fn array(mut self, name: &str, dims: &[&str]) -> Self {
        let array = Array::with_param_dims(name, dims);
        if self.arrays.insert(array.name.clone(), array).is_some() {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Declares an array with arbitrary symbolic extents.
    pub fn array_with_dims(mut self, name: &str, dims: Vec<Expr>) -> Self {
        let array = Array::new(name, dims);
        if self.arrays.insert(array.name.clone(), array).is_some() {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Appends a top-level node (usually a loop nest).
    pub fn node(mut self, node: Node) -> Self {
        self.body.push(node);
        self
    }

    /// Appends several top-level nodes.
    pub fn nodes(mut self, nodes: impl IntoIterator<Item = Node>) -> Self {
        self.body.extend(nodes);
        self
    }

    /// Finishes building, validating the program.
    ///
    /// # Errors
    /// Returns [`IrError::DuplicateDeclaration`] if a parameter or array was
    /// declared twice, or any validation error from [`Program::validate`].
    pub fn build(self) -> Result<Program> {
        if let Some(name) = &self.duplicate {
            return Err(IrError::DuplicateDeclaration(name.clone()));
        }
        let program = self.assemble();
        program.validate()?;
        Ok(program)
    }

    /// Finishes building without validating. Intended for tests that
    /// deliberately construct ill-formed programs.
    pub fn build_unchecked(self) -> Program {
        self.assemble()
    }

    fn assemble(self) -> Program {
        let mut program = Program {
            name: self.name,
            params: self.params,
            scalar_params: self.scalar_params,
            arrays: self.arrays,
            body: self.body,
        };
        program.renumber_computations();
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{cst, var};
    use crate::nest::{for_loop, CompId, Computation};
    use crate::prelude::*;

    #[test]
    fn builder_assigns_dense_computation_ids() {
        let mk = |name: &str| {
            Node::Computation(Computation::assign(
                name,
                ArrayRef::new("A", vec![var("i")]),
                fconst(0.0),
            ))
        };
        let p = Program::builder("p")
            .param("N", 4)
            .array("A", &["N"])
            .node(for_loop("i", cst(0), var("N"), vec![mk("S1"), mk("S2")]))
            .build()
            .unwrap();
        let ids: Vec<CompId> = p.computations().iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![CompId(0), CompId(1)]);
    }

    #[test]
    fn duplicate_param_is_rejected() {
        let err = Program::builder("p").param("N", 1).param("N", 2).build();
        assert_eq!(err, Err(IrError::DuplicateDeclaration("N".into())));
    }

    #[test]
    fn duplicate_array_is_rejected() {
        let err = Program::builder("p")
            .param("N", 1)
            .array("A", &["N"])
            .array("A", &["N"])
            .build();
        assert_eq!(err, Err(IrError::DuplicateDeclaration("A".into())));
    }

    #[test]
    fn scalar_params_are_recorded() {
        let p = Program::builder("p").scalar("alpha", 1.5).build().unwrap();
        assert_eq!(p.scalar_param("alpha"), Some(1.5));
        assert_eq!(p.scalar_param("beta"), None);
    }

    #[test]
    fn array_with_explicit_dims() {
        let p = Program::builder("p")
            .param("N", 10)
            .array_with_dims("A", vec![var("N") + cst(1), cst(3)])
            .build()
            .unwrap();
        let a = p.array(&Var::new("A")).unwrap();
        assert_eq!(a.concrete_dims(&p.params), Some(vec![11, 3]));
    }

    #[test]
    fn build_validates() {
        let bad = Program::builder("p")
            .node(for_loop("i", cst(0), var("N"), vec![]))
            .build();
        assert_eq!(bad, Err(IrError::UnknownVariable("N".into())));
    }

    #[test]
    fn nodes_appends_in_order() {
        let p = Program::builder("p")
            .nodes(vec![
                for_loop("i", cst(0), cst(4), vec![]),
                for_loop("j", cst(0), cst(4), vec![]),
            ])
            .build()
            .unwrap();
        assert_eq!(p.loop_nests().len(), 2);
        assert_eq!(p.loop_nests()[0].iter, Var::new("i"));
    }
}
