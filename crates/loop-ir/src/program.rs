//! The top-level [`Program`]: parameters, array declarations and a sequence
//! of loop-nest trees.

use std::collections::BTreeMap;
use std::fmt;

use crate::array::Array;
use crate::builder::ProgramBuilder;
use crate::error::{IrError, Result};
use crate::expr::Var;
use crate::nest::{CompId, Computation, Loop, Node};
use crate::visit::{walk_computations, CompContext, StructuralHasher};

/// A complete program: symbolic integer parameters with concrete bindings,
/// symbolic scalar parameters, array declarations, and an ordered sequence of
/// top-level nodes (usually loop nests).
///
/// Programs are semantically a straight-line sequence of their top-level
/// nodes; there is no other control flow, matching the paper's definition of
/// loop nests as SESE regions extracted from the application.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    /// Program name (benchmark name).
    pub name: String,
    /// Integer size parameters and their concrete values (the "problem size").
    pub params: BTreeMap<Var, i64>,
    /// Scalar floating-point parameters (e.g. `alpha`, `beta`).
    pub scalar_params: BTreeMap<Var, f64>,
    /// Declared arrays by name.
    pub arrays: BTreeMap<Var, Array>,
    /// Ordered top-level nodes.
    pub body: Vec<Node>,
}

impl Program {
    /// Starts building a program with the given name.
    pub fn builder(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder::new(name)
    }

    /// Returns the declared array, or an error mentioning the name.
    pub fn array(&self, name: &Var) -> Result<&Array> {
        self.arrays
            .get(name)
            .ok_or_else(|| IrError::UnknownArray(name.to_string()))
    }

    /// All computations of the program in textual (execution) order.
    pub fn computations(&self) -> Vec<&Computation> {
        let mut out = Vec::new();
        for node in &self.body {
            node.collect_computations(&mut out);
        }
        out
    }

    /// All computations together with their enclosing loop context, in
    /// execution order.
    pub fn computation_contexts(&self) -> Vec<CompContext<'_>> {
        walk_computations(&self.body)
    }

    /// The top-level loop nests of the program (non-loop top-level nodes are
    /// skipped).
    pub fn loop_nests(&self) -> Vec<&Loop> {
        self.body.iter().filter_map(Node::as_loop).collect()
    }

    /// Looks up a computation by its stable identifier.
    pub fn computation(&self, id: CompId) -> Option<&Computation> {
        self.computations().into_iter().find(|c| c.id == id)
    }

    /// Number of computations in the program.
    pub fn computation_count(&self) -> usize {
        self.body.iter().map(Node::computation_count).sum()
    }

    /// Maximum loop depth across all nests.
    pub fn max_depth(&self) -> usize {
        self.body
            .iter()
            .map(Node::max_loop_depth)
            .max()
            .unwrap_or(0)
    }

    /// Concrete value of an integer parameter.
    pub fn param(&self, name: &str) -> Option<i64> {
        self.params.get(&Var::new(name)).copied()
    }

    /// Concrete value of a scalar parameter.
    pub fn scalar_param(&self, name: &str) -> Option<f64> {
        self.scalar_params.get(&Var::new(name)).copied()
    }

    /// Replaces the concrete value bound to an integer parameter.
    ///
    /// # Errors
    /// Returns [`IrError::UnknownParam`] if the parameter was never declared.
    pub fn set_param(&mut self, name: &str, value: i64) -> Result<()> {
        let key = Var::new(name);
        match self.params.get_mut(&key) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(IrError::UnknownParam(name.to_string())),
        }
    }

    /// Returns a copy of the program with a different problem size.
    pub fn with_params(&self, new_params: &[(&str, i64)]) -> Result<Program> {
        let mut out = self.clone();
        for (name, value) in new_params {
            out.set_param(name, *value)?;
        }
        Ok(out)
    }

    /// Total footprint of all declared arrays in bytes.
    pub fn total_array_bytes(&self) -> i64 {
        self.arrays
            .values()
            .filter_map(|a| a.size_bytes(&self.params))
            .sum()
    }

    /// Re-assigns fresh, dense [`CompId`]s in execution order. Used by the
    /// builder and by transformations that duplicate statements.
    pub fn renumber_computations(&mut self) {
        let mut next = 0u32;
        fn visit(node: &mut Node, next: &mut u32) {
            match node {
                Node::Loop(l) => {
                    for n in &mut l.body {
                        visit(n, next);
                    }
                }
                Node::Computation(c) => {
                    c.id = CompId(*next);
                    *next += 1;
                }
                Node::Call(_) => {}
            }
        }
        for node in &mut self.body {
            visit(node, &mut next);
        }
    }

    /// Validates a hypothetical node sequence against this program's
    /// declarations — the check [`validate`](Self::validate) would perform if
    /// `nodes` replaced part of the body. Used by the scheduler to vet a
    /// transformed nest without materializing the whole candidate program.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate_nodes(&self, nodes: &[Node]) -> Result<()> {
        for node in nodes {
            self.validate_node(node, &mut Vec::new())?;
        }
        Ok(())
    }

    /// Structural hash of the full program: environment
    /// ([`environment_hash`](Self::environment_hash)) plus body structure.
    ///
    /// Two programs share a hash exactly when they have the same parameters,
    /// array declarations and structurally identical bodies (statement names
    /// and ids excluded — see [`crate::visit::structural_hash_nodes`]). The
    /// scheduler uses this to recognize candidate programs it has already
    /// evaluated.
    pub fn structural_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = StructuralHasher::default();
        self.environment_hash().hash(&mut hasher);
        crate::visit::structural_hash_nodes(&self.body).hash(&mut hasher);
        hasher.finish()
    }

    /// Hash of everything a body's cost can depend on *besides* the body:
    /// integer parameters, scalar parameters and array declarations.
    ///
    /// Transformations only rewrite `body`, so all candidate programs of one
    /// scheduling run share an environment hash; the cost model combines it
    /// with per-nest structural hashes as its memoization key.
    pub fn environment_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = StructuralHasher::default();
        for (name, value) in &self.params {
            name.hash(&mut hasher);
            value.hash(&mut hasher);
        }
        for (name, value) in &self.scalar_params {
            name.hash(&mut hasher);
            value.to_bits().hash(&mut hasher);
        }
        for (name, array) in &self.arrays {
            name.hash(&mut hasher);
            array.dims.hash(&mut hasher);
            array.elem_size.hash(&mut hasher);
        }
        hasher.finish()
    }

    /// Validates the structural invariants of the program:
    ///
    /// * every accessed array is declared and accessed with matching rank,
    /// * every variable used in subscripts and bounds is either an enclosing
    ///   loop iterator or a declared integer parameter,
    /// * loop iterators are not shadowed within a nest,
    /// * loop steps are positive.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        for node in &self.body {
            self.validate_node(node, &mut Vec::new())?;
        }
        Ok(())
    }

    fn validate_node(&self, node: &Node, iterators: &mut Vec<Var>) -> Result<()> {
        match node {
            Node::Loop(l) => {
                if l.step <= 0 {
                    return Err(IrError::InvalidStep {
                        iterator: l.iter.to_string(),
                        step: l.step,
                    });
                }
                if iterators.contains(&l.iter) {
                    return Err(IrError::DuplicateIterator(l.iter.to_string()));
                }
                for bound in [&l.lower, &l.upper] {
                    for v in bound.vars() {
                        if !iterators.contains(&v) && !self.params.contains_key(&v) {
                            return Err(IrError::UnknownVariable(v.to_string()));
                        }
                    }
                }
                iterators.push(l.iter.clone());
                for n in &l.body {
                    self.validate_node(n, iterators)?;
                }
                iterators.pop();
                Ok(())
            }
            Node::Computation(c) => {
                for access in c.accesses() {
                    let array = self.array(&access.array_ref.array)?;
                    if array.rank() != access.array_ref.rank() {
                        return Err(IrError::RankMismatch {
                            array: array.name.to_string(),
                            expected: array.rank(),
                            found: access.array_ref.rank(),
                        });
                    }
                    for idx in &access.array_ref.indices {
                        for v in idx.vars() {
                            if !iterators.contains(&v) && !self.params.contains_key(&v) {
                                return Err(IrError::UnknownVariable(v.to_string()));
                            }
                        }
                    }
                }
                for p in c.value.params() {
                    if !self.scalar_params.contains_key(&p) {
                        return Err(IrError::UnknownParam(p.to_string()));
                    }
                }
                Ok(())
            }
            Node::Call(call) => {
                self.array(&call.output)?;
                for input in &call.inputs {
                    self.array(input)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Program {
    /// Formats the program with the C-like pretty printer
    /// ([`crate::printer::print_program`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::print_program(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{cst, var};
    use crate::nest::{for_loop, Computation};
    use crate::prelude::*;

    fn small_program() -> Program {
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("B", vec![var("i")]),
            load("A", vec![var("i")]) * fconst(2.0),
        );
        Program::builder("axpy")
            .param("N", 16)
            .array("A", &["N"])
            .array("B", &["N"])
            .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(s1)]))
            .build()
            .unwrap()
    }

    #[test]
    fn computations_and_counts() {
        let p = small_program();
        assert_eq!(p.computations().len(), 1);
        assert_eq!(p.computation_count(), 1);
        assert_eq!(p.max_depth(), 1);
        assert_eq!(p.loop_nests().len(), 1);
    }

    #[test]
    fn params_can_be_rebound() {
        let mut p = small_program();
        assert_eq!(p.param("N"), Some(16));
        p.set_param("N", 64).unwrap();
        assert_eq!(p.param("N"), Some(64));
        assert!(p.set_param("M", 1).is_err());
        let q = p.with_params(&[("N", 8)]).unwrap();
        assert_eq!(q.param("N"), Some(8));
        assert_eq!(p.param("N"), Some(64));
    }

    #[test]
    fn footprint_is_computed() {
        let p = small_program();
        // two arrays of 16 doubles.
        assert_eq!(p.total_array_bytes(), 2 * 16 * 8);
    }

    #[test]
    fn validation_accepts_well_formed_program() {
        assert!(small_program().validate().is_ok());
    }

    #[test]
    fn validation_rejects_unknown_array() {
        let s1 = Computation::assign("S1", ArrayRef::new("Z", vec![var("i")]), fconst(0.0));
        let p = Program::builder("bad")
            .param("N", 4)
            .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(s1)]))
            .build_unchecked();
        assert_eq!(p.validate(), Err(IrError::UnknownArray("Z".into())));
    }

    #[test]
    fn validation_rejects_rank_mismatch() {
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("A", vec![var("i"), var("i")]),
            fconst(0.0),
        );
        let p = Program::builder("bad")
            .param("N", 4)
            .array("A", &["N"])
            .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(s1)]))
            .build_unchecked();
        assert!(matches!(p.validate(), Err(IrError::RankMismatch { .. })));
    }

    #[test]
    fn validation_rejects_unbound_iterator() {
        let s1 = Computation::assign("S1", ArrayRef::new("A", vec![var("j")]), fconst(0.0));
        let p = Program::builder("bad")
            .param("N", 4)
            .array("A", &["N"])
            .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(s1)]))
            .build_unchecked();
        assert_eq!(p.validate(), Err(IrError::UnknownVariable("j".into())));
    }

    #[test]
    fn validation_rejects_duplicate_iterator() {
        let inner = for_loop("i", cst(0), cst(4), vec![]);
        let p = Program::builder("bad")
            .node(for_loop("i", cst(0), cst(4), vec![inner]))
            .build_unchecked();
        assert_eq!(p.validate(), Err(IrError::DuplicateIterator("i".into())));
    }

    #[test]
    fn validation_rejects_unknown_scalar_param() {
        let s1 = Computation::assign("S1", ArrayRef::new("A", vec![var("i")]), param("alpha"));
        let p = Program::builder("bad")
            .param("N", 4)
            .array("A", &["N"])
            .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(s1)]))
            .build_unchecked();
        assert_eq!(p.validate(), Err(IrError::UnknownParam("alpha".into())));
    }

    #[test]
    fn renumbering_assigns_dense_ids() {
        let mut p = small_program();
        p.body.push(p.body[0].clone());
        p.renumber_computations();
        let ids: Vec<u32> = p.computations().iter().map(|c| c.id.0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert!(p.computation(CompId(1)).is_some());
        assert!(p.computation(CompId(7)).is_none());
    }

    #[test]
    fn display_contains_loop_headers() {
        let text = small_program().to_string();
        assert!(text.contains("for (i = 0; i < N; i += 1)"));
        assert!(text.contains("B[i]"));
    }
}
