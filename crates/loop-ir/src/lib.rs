//! # loop-ir — a symbolic loop-nest intermediate representation
//!
//! This crate provides the symbolic representation of loop nests that the
//! paper *"A Priori Loop Nest Normalization: Automatic Loop Scheduling in
//! Complex Applications"* (CGO 2025) lifts from LLVM IR before normalizing
//! (§3, Fig. 4). Instead of lifting from LLVM IR through Polly, programs are
//! constructed directly:
//!
//! * programmatically through [`builder::ProgramBuilder`] or the free
//!   constructor helpers in [`expr`] / [`scalar`] / [`nest`],
//! * from a C-like textual mini-language through [`parser::parse_program`],
//! * from NumPy-style array expressions through [`numpy::NumpyProgram`],
//!   mirroring the DaCe Python frontend used in the paper's §4.3.
//!
//! The representation is a tree of [`Loop`] and [`Computation`] nodes
//! (see [`nest::Node`]), where loop bounds and memory accesses are symbolic
//! integer expressions ([`expr::Expr`]) and computation bodies are scalar
//! floating-point expressions over array loads ([`scalar::ScalarExpr`]).
//!
//! ```
//! use loop_ir::prelude::*;
//!
//! // C[i][j] += A[i][k] * B[k][j]  — the GEMM update statement.
//! let update = Computation::reduction(
//!     "S1",
//!     ArrayRef::new("C", vec![var("i"), var("j")]),
//!     BinOp::Add,
//!     load("A", vec![var("i"), var("k")]) * load("B", vec![var("k"), var("j")]),
//! );
//! let nest = for_loop(
//!     "i", cst(0), var("NI"),
//!     vec![for_loop("j", cst(0), var("NJ"),
//!         vec![for_loop("k", cst(0), var("NK"), vec![Node::Computation(update)])])],
//! );
//! let program = Program::builder("gemm")
//!     .param("NI", 8).param("NJ", 8).param("NK", 8)
//!     .array("A", &["NI", "NK"]).array("B", &["NK", "NJ"]).array("C", &["NI", "NJ"])
//!     .node(nest)
//!     .build()
//!     .expect("well-formed program");
//! assert_eq!(program.computations().len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod array;
pub mod builder;
pub mod error;
pub mod expr;
pub mod nest;
pub mod numpy;
pub mod parser;
pub mod printer;
pub mod program;
pub mod scalar;
pub mod source;
pub mod visit;

pub use array::{Array, ArrayRef};
pub use builder::ProgramBuilder;
pub use error::{IrError, Result};
pub use expr::{AffineExpr, Expr, Var};
pub use nest::{BlasCall, BlasKind, Computation, Loop, LoopSchedule, Node};
pub use program::Program;
pub use scalar::{BinOp, CmpOp, ScalarExpr, UnaryOp};
pub use visit::{structural_hash_node, structural_hash_nodes, StructuralHasher};

/// Commonly used items, intended for glob import in downstream crates,
/// examples and tests.
pub mod prelude {
    pub use crate::array::{Array, ArrayRef};
    pub use crate::builder::ProgramBuilder;
    pub use crate::error::{IrError, Result};
    pub use crate::expr::{cst, var, AffineExpr, Expr, Var};
    pub use crate::nest::{
        for_loop, parallel_loop, BlasCall, BlasKind, Computation, Loop, LoopSchedule, Node,
    };
    pub use crate::program::Program;
    pub use crate::scalar::{fconst, load, param, BinOp, CmpOp, ScalarExpr, UnaryOp};
    pub use crate::visit::{
        structural_hash_node, structural_hash_nodes, walk_computations, walk_loops, CompContext,
    };
}
