//! A textual frontend: a C-like mini-language for loop-nest programs.
//!
//! The paper lifts its symbolic representation from LLVM IR through Polly;
//! this crate instead accepts a small, explicit source language whose
//! constructs map one-to-one onto the IR. The printer
//! ([`crate::printer::print_program`]) emits a superset of this language, so
//! programs round-trip.
//!
//! ```text
//! program gemm {
//!   param NI = 1000; param NJ = 1100; param NK = 1200;
//!   scalar alpha = 1.5; scalar beta = 1.2;
//!   array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
//!   for i in 0..NI {
//!     for j in 0..NJ {
//!       C[i][j] = C[i][j] * beta;
//!       for k in 0..NK {
//!         C[i][j] += alpha * A[i][k] * B[k][j];
//!       }
//!     }
//!   }
//! }
//! ```

use crate::array::ArrayRef;
use crate::error::{IrError, Result};
use crate::expr::{Expr, Var};
use crate::nest::{Computation, Loop, LoopSchedule, Node};
use crate::program::Program;
use crate::scalar::{BinOp, ScalarExpr, UnaryOp};

/// Parses a complete program from source text.
///
/// # Errors
/// Returns [`IrError::Parse`] with line/column information on syntax errors,
/// and validation errors from [`Program::validate`] for semantic problems.
pub fn parse_program(source: &str) -> Result<Program> {
    let tokens = Lexer::new(source).tokenize()?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        next_comp: 0,
    };
    let program = parser.program()?;
    program.validate()?;
    Ok(program)
}

#[derive(Clone, Debug, PartialEq)]
enum TokenKind {
    Ident(String),
    Int(i64),
    Float(f64),
    Symbol(&'static str),
    Eof,
}

#[derive(Clone, Debug)]
struct Token {
    kind: TokenKind,
    line: usize,
    column: usize,
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            source,
        }
    }

    fn error(&self, message: impl Into<String>) -> IrError {
        IrError::Parse {
            message: message.into(),
            line: self.line,
            column: self.column,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn tokenize(mut self) -> Result<Vec<Token>> {
        let _ = self.source;
        let mut tokens = Vec::new();
        loop {
            self.skip_whitespace_and_comments();
            let (line, column) = (self.line, self.column);
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    column,
                });
                return Ok(tokens);
            };
            let kind = if c.is_ascii_alphabetic() || c == '_' {
                let mut ident = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Ident(ident)
            } else if c.is_ascii_digit() {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        self.bump();
                    } else if c == '.' && !is_float && self.chars.get(self.pos + 1) != Some(&'.') {
                        is_float = true;
                        text.push(c);
                        self.bump();
                    } else if (c == 'e' || c == 'E') && is_float {
                        is_float = true;
                        text.push(c);
                        self.bump();
                        if matches!(self.peek(), Some('+') | Some('-')) {
                            text.push(self.bump().unwrap());
                        }
                    } else {
                        break;
                    }
                }
                if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| self.error(format!("invalid float literal `{text}`")))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| self.error(format!("invalid integer literal `{text}`")))?,
                    )
                }
            } else {
                self.symbol()?
            };
            tokens.push(Token { kind, line, column });
        }
    }

    fn skip_whitespace_and_comments(&mut self) {
        loop {
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.bump();
            }
            if self.peek() == Some('/') && self.chars.get(self.pos + 1) == Some(&'/') {
                while let Some(c) = self.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
            } else {
                return;
            }
        }
    }

    fn symbol(&mut self) -> Result<TokenKind> {
        const TWO_CHAR: &[(&str, &str)] = &[
            ("+=", "+="),
            ("-=", "-="),
            ("*=", "*="),
            ("/=", "/="),
            ("..", ".."),
            ("<=", "<="),
            (">=", ">="),
            ("==", "=="),
            ("!=", "!="),
        ];
        let rest: String = self.chars[self.pos..self.pos + 2.min(self.chars.len() - self.pos)]
            .iter()
            .collect();
        for (pat, sym) in TWO_CHAR {
            if rest == *pat {
                self.bump();
                self.bump();
                return Ok(TokenKind::Symbol(sym));
            }
        }
        let c = self.peek().unwrap();
        let sym = match c {
            '{' => "{",
            '}' => "}",
            '[' => "[",
            ']' => "]",
            '(' => "(",
            ')' => ")",
            ';' => ";",
            ',' => ",",
            '=' => "=",
            '+' => "+",
            '-' => "-",
            '*' => "*",
            '/' => "/",
            '%' => "%",
            '<' => "<",
            '>' => ">",
            '?' => "?",
            ':' => ":",
            '#' => "#",
            _ => return Err(self.error(format!("unexpected character `{c}`"))),
        };
        self.bump();
        Ok(TokenKind::Symbol(sym))
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_comp: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn error(&self, message: impl Into<String>) -> IrError {
        let tok = self.peek();
        IrError::Parse {
            message: message.into(),
            line: tok.line,
            column: tok.column,
        }
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        self.pos += 1;
        tok
    }

    fn eat_symbol(&mut self, sym: &str) -> Result<()> {
        match &self.peek().kind {
            TokenKind::Symbol(s) if *s == sym => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{sym}`, found {other:?}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn peek_symbol(&self, sym: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Symbol(s) if *s == sym)
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn int(&mut self) -> Result<i64> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            other => Err(self.error(format!("expected integer literal, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v as f64)
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(v)
            }
            TokenKind::Symbol("-") => {
                self.bump();
                Ok(-self.number()?)
            }
            other => Err(self.error(format!("expected number, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<Program> {
        self.eat_keyword("program")?;
        let name = self.ident()?;
        self.eat_symbol("{")?;
        let mut builder = Program::builder(name);
        loop {
            if self.peek_symbol("}") {
                self.bump();
                break;
            }
            if self.peek_keyword("param") {
                self.bump();
                let name = self.ident()?;
                self.eat_symbol("=")?;
                let value = self.int()?;
                self.eat_symbol(";")?;
                builder = builder.param(&name, value);
            } else if self.peek_keyword("scalar") {
                self.bump();
                let name = self.ident()?;
                self.eat_symbol("=")?;
                let value = self.number()?;
                self.eat_symbol(";")?;
                builder = builder.scalar(&name, value);
            } else if self.peek_keyword("array") {
                self.bump();
                let name = self.ident()?;
                let mut dims = Vec::new();
                while self.peek_symbol("[") {
                    self.bump();
                    dims.push(self.expr()?);
                    self.eat_symbol("]")?;
                }
                self.eat_symbol(";")?;
                builder = builder.array_with_dims(&name, dims);
            } else {
                let node = self.statement()?;
                builder = builder.node(node);
            }
        }
        match &self.peek().kind {
            TokenKind::Eof => {}
            other => return Err(self.error(format!("expected end of input, found {other:?}"))),
        }
        // Duplicate declarations and semantic validation are reported by the
        // builder / validator with their own error variants.
        match builder.build() {
            Ok(p) => Ok(p),
            Err(e) => Err(e),
        }
    }

    fn statement(&mut self) -> Result<Node> {
        let mut schedule = LoopSchedule::sequential();
        if self.peek_symbol("#") {
            self.bump();
            self.eat_keyword("pragma")?;
            while let TokenKind::Ident(word) = self.peek().kind.clone() {
                match word.as_str() {
                    "parallel" => {
                        schedule.parallel = true;
                        self.bump();
                    }
                    "simd" => {
                        schedule.vectorize = true;
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        if self.peek_keyword("for") {
            self.for_loop(schedule)
        } else {
            self.assignment()
        }
    }

    fn for_loop(&mut self, schedule: LoopSchedule) -> Result<Node> {
        self.eat_keyword("for")?;
        let iter = self.ident()?;
        self.eat_keyword("in")?;
        let lower = self.expr()?;
        self.eat_symbol("..")?;
        let upper = self.expr()?;
        let step = if self.peek_keyword("step") {
            self.bump();
            self.int()?
        } else {
            1
        };
        self.eat_symbol("{")?;
        let mut body = Vec::new();
        while !self.peek_symbol("}") {
            body.push(self.statement()?);
        }
        self.eat_symbol("}")?;
        let mut l = Loop::new(iter, lower, upper, body);
        l.step = step;
        l.schedule = schedule;
        Ok(Node::Loop(l))
    }

    fn assignment(&mut self) -> Result<Node> {
        let target = self.array_ref()?;
        let reduction = if self.peek_symbol("+=") {
            self.bump();
            Some(BinOp::Add)
        } else if self.peek_symbol("-=") {
            self.bump();
            Some(BinOp::Sub)
        } else if self.peek_symbol("*=") {
            self.bump();
            Some(BinOp::Mul)
        } else if self.peek_symbol("/=") {
            self.bump();
            Some(BinOp::Div)
        } else {
            self.eat_symbol("=")?;
            None
        };
        let value = self.scalar_expr()?;
        self.eat_symbol(";")?;
        let name = format!("S{}", self.next_comp);
        self.next_comp += 1;
        let comp = match reduction {
            Some(op) => Computation::reduction(name, target, op, value),
            None => Computation::assign(name, target, value),
        };
        Ok(Node::Computation(comp))
    }

    fn array_ref(&mut self) -> Result<ArrayRef> {
        let name = self.ident()?;
        let mut indices = Vec::new();
        while self.peek_symbol("[") {
            self.bump();
            indices.push(self.expr()?);
            self.eat_symbol("]")?;
        }
        Ok(ArrayRef::new(name, indices))
    }

    // Integer (index) expressions: + - * / % with standard precedence.
    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            if self.peek_symbol("+") {
                self.bump();
                lhs = lhs + self.term()?;
            } else if self.peek_symbol("-") {
                self.bump();
                lhs = lhs - self.term()?;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.factor()?;
        loop {
            if self.peek_symbol("*") {
                self.bump();
                lhs = lhs * self.factor()?;
            } else if self.peek_symbol("/") {
                self.bump();
                lhs = Expr::Div(Box::new(lhs), Box::new(self.factor()?));
            } else if self.peek_symbol("%") {
                self.bump();
                lhs = Expr::Mod(Box::new(lhs), Box::new(self.factor()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Const(v))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Var(Var::new(name)))
            }
            TokenKind::Symbol("-") => {
                self.bump();
                Ok(-self.factor()?)
            }
            TokenKind::Symbol("(") => {
                self.bump();
                let e = self.expr()?;
                self.eat_symbol(")")?;
                Ok(e)
            }
            other => Err(self.error(format!("expected index expression, found {other:?}"))),
        }
    }

    // Scalar expressions: + - * / with precedence, unary minus, calls.
    fn scalar_expr(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.scalar_term()?;
        loop {
            if self.peek_symbol("+") {
                self.bump();
                lhs = lhs + self.scalar_term()?;
            } else if self.peek_symbol("-") {
                self.bump();
                lhs = lhs - self.scalar_term()?;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn scalar_term(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.scalar_factor()?;
        loop {
            if self.peek_symbol("*") {
                self.bump();
                lhs = lhs * self.scalar_factor()?;
            } else if self.peek_symbol("/") {
                self.bump();
                lhs = lhs / self.scalar_factor()?;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn scalar_factor(&mut self) -> Result<ScalarExpr> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(ScalarExpr::Const(v as f64))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(ScalarExpr::Const(v))
            }
            TokenKind::Symbol("-") => {
                self.bump();
                Ok(-self.scalar_factor()?)
            }
            TokenKind::Symbol("(") => {
                self.bump();
                let e = self.scalar_expr()?;
                self.eat_symbol(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek_symbol("(") {
                    self.call(&name)
                } else if self.peek_symbol("[") {
                    let mut indices = Vec::new();
                    while self.peek_symbol("[") {
                        self.bump();
                        indices.push(self.expr()?);
                        self.eat_symbol("]")?;
                    }
                    Ok(ScalarExpr::Load(ArrayRef::new(name, indices)))
                } else {
                    // A bare identifier in scalar position is a scalar
                    // parameter (alpha, beta, …); iterators must be wrapped
                    // in `index(...)`.
                    Ok(ScalarExpr::Param(Var::new(name)))
                }
            }
            other => Err(self.error(format!("expected scalar expression, found {other:?}"))),
        }
    }

    fn call(&mut self, name: &str) -> Result<ScalarExpr> {
        self.eat_symbol("(")?;
        let mut args = Vec::new();
        if !self.peek_symbol(")") {
            loop {
                if name == "index" {
                    args.push(ScalarExpr::Index(self.expr()?));
                } else {
                    args.push(self.scalar_expr()?);
                }
                if self.peek_symbol(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_symbol(")")?;
        let arity_error = |expected: usize| {
            self.error(format!(
                "`{name}` expects {expected} argument(s), found {}",
                args.len()
            ))
        };
        let unary = |op: UnaryOp, mut args: Vec<ScalarExpr>| {
            ScalarExpr::Unary(op, Box::new(args.remove(0)))
        };
        match name {
            "sqrt" | "exp" | "log" | "abs" => {
                if args.len() != 1 {
                    return Err(arity_error(1));
                }
                let op = match name {
                    "sqrt" => UnaryOp::Sqrt,
                    "exp" => UnaryOp::Exp,
                    "log" => UnaryOp::Log,
                    _ => UnaryOp::Abs,
                };
                Ok(unary(op, args))
            }
            "min" | "max" | "pow" => {
                if args.len() != 2 {
                    return Err(arity_error(2));
                }
                let op = match name {
                    "min" => BinOp::Min,
                    "max" => BinOp::Max,
                    _ => BinOp::Pow,
                };
                let b = args.pop().unwrap();
                let a = args.pop().unwrap();
                Ok(ScalarExpr::Binary(op, Box::new(a), Box::new(b)))
            }
            "index" => {
                if args.len() != 1 {
                    return Err(arity_error(1));
                }
                Ok(args.remove(0))
            }
            other => Err(self.error(format!("unknown function `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Var;

    const GEMM: &str = r#"
        program gemm {
          param NI = 8; param NJ = 9; param NK = 10;
          scalar alpha = 1.5; scalar beta = 1.2;
          array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
          for i in 0..NI {
            for j in 0..NJ {
              C[i][j] = C[i][j] * beta;
              for k in 0..NK {
                C[i][j] += alpha * A[i][k] * B[k][j];
              }
            }
          }
        }
    "#;

    #[test]
    fn parses_gemm() {
        let p = parse_program(GEMM).unwrap();
        assert_eq!(p.name, "gemm");
        assert_eq!(p.param("NI"), Some(8));
        assert_eq!(p.scalar_param("alpha"), Some(1.5));
        assert_eq!(p.computations().len(), 2);
        assert_eq!(p.max_depth(), 3);
        let update = p.computations()[1];
        assert_eq!(update.reduction, Some(BinOp::Add));
        assert_eq!(update.reads().len(), 3);
    }

    #[test]
    fn parses_pragmas_and_steps() {
        let src = r#"
            program p {
              param N = 64;
              array A[N];
              #pragma parallel simd
              for i in 0..N step 4 {
                A[i] = 1.0;
              }
            }
        "#;
        let p = parse_program(src).unwrap();
        let l = p.loop_nests()[0];
        assert!(l.schedule.parallel);
        assert!(l.schedule.vectorize);
        assert_eq!(l.step, 4);
    }

    #[test]
    fn parses_functions_and_index() {
        let src = r#"
            program p {
              param N = 4;
              array A[N]; array B[N];
              for i in 0..N {
                B[i] = max(sqrt(A[i]), 0.0) + exp(A[i]) + index(i * 2);
              }
            }
        "#;
        let p = parse_program(src).unwrap();
        let c = p.computations()[0];
        assert_eq!(c.value.loads().len(), 2);
        assert!(c.value.index_vars().contains(&Var::new("i")));
    }

    #[test]
    fn parses_negative_index_offsets() {
        let src = r#"
            program p {
              param N = 8;
              array A[N]; array B[N];
              for i in 1..N - 1 {
                B[i] = A[i - 1] + A[i + 1];
              }
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.computations()[0].reads().len(), 2);
    }

    #[test]
    fn comments_are_skipped() {
        let src = "program p { // nothing here\n param N = 1; // trailing\n }";
        assert!(parse_program(src).is_ok());
    }

    #[test]
    fn syntax_error_reports_location() {
        let err = parse_program("program p { param N 3; }").unwrap_err();
        match err {
            IrError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_function_is_rejected() {
        let src = "program p { param N = 2; array A[N]; for i in 0..N { A[i] = foo(1.0); } }";
        assert!(matches!(parse_program(src), Err(IrError::Parse { .. })));
    }

    #[test]
    fn semantic_errors_surface_from_validation() {
        let src = "program p { param N = 2; for i in 0..N { A[i] = 1.0; } }";
        assert_eq!(parse_program(src), Err(IrError::UnknownArray("A".into())));
    }

    #[test]
    fn printer_output_reparses() {
        let p = parse_program(GEMM).unwrap();
        // The printer uses C-style headers, not the frontend syntax, so only
        // check that a second parse of an equivalent frontend string matches.
        let q = parse_program(GEMM).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn reduction_operators() {
        let src = r#"
            program p {
              param N = 4;
              array A[N]; array B[N];
              for i in 0..N {
                A[i] += B[i];
                A[i] -= B[i];
                A[i] *= B[i];
                A[i] /= B[i];
              }
            }
        "#;
        let p = parse_program(src).unwrap();
        let ops: Vec<Option<BinOp>> = p.computations().iter().map(|c| c.reduction).collect();
        assert_eq!(
            ops,
            vec![
                Some(BinOp::Add),
                Some(BinOp::Sub),
                Some(BinOp::Mul),
                Some(BinOp::Div)
            ]
        );
    }
}
