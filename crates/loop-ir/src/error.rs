//! Error types shared across the IR crate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, IrError>;

/// Errors produced while constructing, parsing or validating IR programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A referenced array was never declared on the program.
    UnknownArray(String),
    /// A referenced symbolic parameter was never declared on the program.
    UnknownParam(String),
    /// A loop iterator or scalar variable was used outside any defining loop.
    UnknownVariable(String),
    /// An array was indexed with the wrong number of subscripts.
    RankMismatch {
        /// Name of the array being accessed.
        array: String,
        /// Declared rank of the array.
        expected: usize,
        /// Number of subscripts in the offending access.
        found: usize,
    },
    /// Two loops in the same nest reuse the same iterator name.
    DuplicateIterator(String),
    /// An entity (array, parameter) was declared twice.
    DuplicateDeclaration(String),
    /// An expression that was required to be affine is not.
    NotAffine(String),
    /// A loop has a non-positive step, which the IR does not model.
    InvalidStep {
        /// Iterator of the loop with the invalid step.
        iterator: String,
        /// The offending step value.
        step: i64,
    },
    /// Textual frontend error with line/column information.
    Parse {
        /// Human-readable description of the syntax error.
        message: String,
        /// 1-based line of the error.
        line: usize,
        /// 1-based column of the error.
        column: usize,
    },
    /// Catch-all for invalid program structure.
    Invalid(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownArray(name) => write!(f, "unknown array `{name}`"),
            IrError::UnknownParam(name) => write!(f, "unknown parameter `{name}`"),
            IrError::UnknownVariable(name) => write!(f, "unknown variable `{name}`"),
            IrError::RankMismatch {
                array,
                expected,
                found,
            } => write!(
                f,
                "array `{array}` has rank {expected} but was indexed with {found} subscripts"
            ),
            IrError::DuplicateIterator(name) => {
                write!(f, "iterator `{name}` is reused by a nested loop")
            }
            IrError::DuplicateDeclaration(name) => {
                write!(f, "`{name}` is declared more than once")
            }
            IrError::NotAffine(expr) => write!(f, "expression `{expr}` is not affine"),
            IrError::InvalidStep { iterator, step } => {
                write!(f, "loop over `{iterator}` has invalid step {step}")
            }
            IrError::Parse {
                message,
                line,
                column,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            IrError::Invalid(msg) => write!(f, "invalid program: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = IrError::RankMismatch {
            array: "A".into(),
            expected: 2,
            found: 3,
        };
        let text = err.to_string();
        assert!(text.contains('A'));
        assert!(text.contains('2'));
        assert!(text.contains('3'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            IrError::UnknownArray("A".into()),
            IrError::UnknownArray("A".into())
        );
        assert_ne!(
            IrError::UnknownArray("A".into()),
            IrError::UnknownArray("B".into())
        );
    }

    #[test]
    fn parse_error_reports_location() {
        let err = IrError::Parse {
            message: "expected `{`".into(),
            line: 3,
            column: 14,
        };
        assert!(err.to_string().contains("3:14"));
    }
}
