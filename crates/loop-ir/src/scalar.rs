//! Scalar floating-point expressions: the right-hand sides of computations.
//!
//! A computation in the paper's model is "a unit of work composed of one or
//! more instructions, where exactly one of the instructions is a write of a
//! scalar value to a data container" (§2). [`ScalarExpr`] describes the value
//! being written: an expression over array loads, loop iterators, symbolic
//! scalar parameters and floating-point arithmetic.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::array::ArrayRef;
use crate::expr::{Expr, Var};

/// Binary floating-point operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Power (`a.powf(b)`).
    Pow,
}

impl BinOp {
    /// Applies the operator to two concrete values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::Pow => a.powf(b),
        }
    }

    /// Returns true if the operator is associative and commutative, i.e.
    /// usable as a reduction operator.
    pub fn is_reduction_op(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max)
    }

    /// Identity element of the operator when used as a reduction.
    pub fn identity(self) -> Option<f64> {
        match self {
            BinOp::Add => Some(0.0),
            BinOp::Mul => Some(1.0),
            BinOp::Min => Some(f64::INFINITY),
            BinOp::Max => Some(f64::NEG_INFINITY),
            _ => None,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Pow => "pow",
        };
        f.write_str(s)
    }
}

/// Unary floating-point operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnaryOp {
    /// Negation.
    Neg,
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Absolute value.
    Abs,
}

impl UnaryOp {
    /// Applies the operator to a concrete value.
    pub fn apply(self, a: f64) -> f64 {
        match self {
            UnaryOp::Neg => -a,
            UnaryOp::Sqrt => a.sqrt(),
            UnaryOp::Exp => a.exp(),
            UnaryOp::Log => a.ln(),
            UnaryOp::Abs => a.abs(),
        }
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnaryOp::Neg => "-",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Exp => "exp",
            UnaryOp::Log => "log",
            UnaryOp::Abs => "abs",
        };
        f.write_str(s)
    }
}

/// Comparison operators used by [`ScalarExpr::Select`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CmpOp {
    /// Evaluates the comparison on two concrete values.
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A scalar floating-point expression over array loads.
#[derive(Clone, PartialEq, Debug)]
pub enum ScalarExpr {
    /// Read of an array element.
    Load(ArrayRef),
    /// Floating-point literal.
    Const(f64),
    /// A symbolic scalar parameter (e.g. `alpha`, `beta`).
    Param(Var),
    /// The value of a loop iterator or an integer index expression, converted
    /// to floating point (e.g. PolyBench initializers use `(i*j) % N`).
    Index(Expr),
    /// Unary operation.
    Unary(UnaryOp, Box<ScalarExpr>),
    /// Binary operation.
    Binary(BinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Conditional selection `if lhs cmp rhs { then } else { otherwise }`.
    Select {
        /// Left operand of the comparison.
        lhs: Box<ScalarExpr>,
        /// Comparison operator.
        cmp: CmpOp,
        /// Right operand of the comparison.
        rhs: Box<ScalarExpr>,
        /// Value when the comparison holds.
        then: Box<ScalarExpr>,
        /// Value when the comparison does not hold.
        otherwise: Box<ScalarExpr>,
    },
}

/// Builds a load expression, the usual leaf of computation bodies.
///
/// ```
/// use loop_ir::prelude::*;
/// let e = load("A", vec![var("i"), var("k")]) * load("B", vec![var("k"), var("j")]);
/// assert_eq!(e.loads().len(), 2);
/// ```
pub fn load(array: impl Into<Var>, indices: Vec<Expr>) -> ScalarExpr {
    ScalarExpr::Load(ArrayRef::new(array, indices))
}

/// Builds a floating-point constant expression.
pub fn fconst(value: f64) -> ScalarExpr {
    ScalarExpr::Const(value)
}

/// Builds a reference to a symbolic scalar parameter.
pub fn param(name: impl Into<Var>) -> ScalarExpr {
    ScalarExpr::Param(name.into())
}

impl ScalarExpr {
    /// Builds a min of two expressions.
    pub fn min(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary(BinOp::Min, Box::new(self), Box::new(other))
    }

    /// Builds a max of two expressions.
    pub fn max(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary(BinOp::Max, Box::new(self), Box::new(other))
    }

    /// Builds a square root.
    pub fn sqrt(self) -> ScalarExpr {
        ScalarExpr::Unary(UnaryOp::Sqrt, Box::new(self))
    }

    /// Builds an exponential.
    pub fn exp(self) -> ScalarExpr {
        ScalarExpr::Unary(UnaryOp::Exp, Box::new(self))
    }

    /// Builds a conditional selection.
    pub fn select(
        lhs: ScalarExpr,
        cmp: CmpOp,
        rhs: ScalarExpr,
        then: ScalarExpr,
        otherwise: ScalarExpr,
    ) -> ScalarExpr {
        ScalarExpr::Select {
            lhs: Box::new(lhs),
            cmp,
            rhs: Box::new(rhs),
            then: Box::new(then),
            otherwise: Box::new(otherwise),
        }
    }

    /// Collects every array load in evaluation order (left to right).
    pub fn loads(&self) -> Vec<ArrayRef> {
        let mut out = Vec::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads(&self, out: &mut Vec<ArrayRef>) {
        match self {
            ScalarExpr::Load(r) => out.push(r.clone()),
            ScalarExpr::Const(_) | ScalarExpr::Param(_) | ScalarExpr::Index(_) => {}
            ScalarExpr::Unary(_, a) => a.collect_loads(out),
            ScalarExpr::Binary(_, a, b) => {
                a.collect_loads(out);
                b.collect_loads(out);
            }
            ScalarExpr::Select {
                lhs,
                rhs,
                then,
                otherwise,
                ..
            } => {
                lhs.collect_loads(out);
                rhs.collect_loads(out);
                then.collect_loads(out);
                otherwise.collect_loads(out);
            }
        }
    }

    /// Collects the names of all scalar parameters referenced.
    pub fn params(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut BTreeSet<Var>) {
        match self {
            ScalarExpr::Param(v) => {
                out.insert(v.clone());
            }
            ScalarExpr::Load(_) | ScalarExpr::Const(_) | ScalarExpr::Index(_) => {}
            ScalarExpr::Unary(_, a) => a.collect_params(out),
            ScalarExpr::Binary(_, a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            ScalarExpr::Select {
                lhs,
                rhs,
                then,
                otherwise,
                ..
            } => {
                lhs.collect_params(out);
                rhs.collect_params(out);
                then.collect_params(out);
                otherwise.collect_params(out);
            }
        }
    }

    /// Collects the integer variables used in `Index` leaves and load
    /// subscripts.
    pub fn index_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_index_vars(&mut out);
        out
    }

    fn collect_index_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            ScalarExpr::Load(r) => {
                for idx in &r.indices {
                    out.extend(idx.vars());
                }
            }
            ScalarExpr::Index(e) => out.extend(e.vars()),
            ScalarExpr::Const(_) | ScalarExpr::Param(_) => {}
            ScalarExpr::Unary(_, a) => a.collect_index_vars(out),
            ScalarExpr::Binary(_, a, b) => {
                a.collect_index_vars(out);
                b.collect_index_vars(out);
            }
            ScalarExpr::Select {
                lhs,
                rhs,
                then,
                otherwise,
                ..
            } => {
                lhs.collect_index_vars(out);
                rhs.collect_index_vars(out);
                then.collect_index_vars(out);
                otherwise.collect_index_vars(out);
            }
        }
    }

    /// Substitutes an integer variable inside load subscripts and `Index`
    /// leaves (used when renaming loop iterators).
    pub fn substitute_index(&self, v: &Var, replacement: &Expr) -> ScalarExpr {
        match self {
            ScalarExpr::Load(r) => ScalarExpr::Load(r.substitute(v, replacement)),
            ScalarExpr::Index(e) => ScalarExpr::Index(e.substitute(v, replacement)),
            ScalarExpr::Const(_) | ScalarExpr::Param(_) => self.clone(),
            ScalarExpr::Unary(op, a) => {
                ScalarExpr::Unary(*op, Box::new(a.substitute_index(v, replacement)))
            }
            ScalarExpr::Binary(op, a, b) => ScalarExpr::Binary(
                *op,
                Box::new(a.substitute_index(v, replacement)),
                Box::new(b.substitute_index(v, replacement)),
            ),
            ScalarExpr::Select {
                lhs,
                cmp,
                rhs,
                then,
                otherwise,
            } => ScalarExpr::Select {
                lhs: Box::new(lhs.substitute_index(v, replacement)),
                cmp: *cmp,
                rhs: Box::new(rhs.substitute_index(v, replacement)),
                then: Box::new(then.substitute_index(v, replacement)),
                otherwise: Box::new(otherwise.substitute_index(v, replacement)),
            },
        }
    }

    /// Counts the floating-point operations performed by one evaluation of
    /// this expression (used by the cost model's FLOP accounting).
    pub fn flop_count(&self) -> u64 {
        match self {
            ScalarExpr::Load(_)
            | ScalarExpr::Const(_)
            | ScalarExpr::Param(_)
            | ScalarExpr::Index(_) => 0,
            ScalarExpr::Unary(op, a) => {
                let inner = a.flop_count();
                match op {
                    UnaryOp::Neg | UnaryOp::Abs => inner + 1,
                    // Transcendental operations are counted with a typical
                    // polynomial-evaluation cost.
                    UnaryOp::Sqrt => inner + 4,
                    UnaryOp::Exp | UnaryOp::Log => inner + 10,
                }
            }
            ScalarExpr::Binary(op, a, b) => {
                let inner = a.flop_count() + b.flop_count();
                match op {
                    BinOp::Pow => inner + 10,
                    BinOp::Div => inner + 4,
                    _ => inner + 1,
                }
            }
            ScalarExpr::Select {
                lhs,
                rhs,
                then,
                otherwise,
                ..
            } => {
                1 + lhs.flop_count() + rhs.flop_count() + then.flop_count() + otherwise.flop_count()
            }
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Load(r) => write!(f, "{r}"),
            ScalarExpr::Const(c) => write!(f, "{c}"),
            ScalarExpr::Param(v) => write!(f, "{v}"),
            ScalarExpr::Index(e) => write!(f, "(double){e}"),
            ScalarExpr::Unary(UnaryOp::Neg, a) => write!(f, "(-{a})"),
            ScalarExpr::Unary(op, a) => write!(f, "{op}({a})"),
            ScalarExpr::Binary(BinOp::Min, a, b) => write!(f, "min({a}, {b})"),
            ScalarExpr::Binary(BinOp::Max, a, b) => write!(f, "max({a}, {b})"),
            ScalarExpr::Binary(BinOp::Pow, a, b) => write!(f, "pow({a}, {b})"),
            ScalarExpr::Binary(op, a, b) => write!(f, "({a} {op} {b})"),
            ScalarExpr::Select {
                lhs,
                cmp,
                rhs,
                then,
                otherwise,
            } => write!(f, "({lhs} {cmp} {rhs} ? {then} : {otherwise})"),
        }
    }
}

impl From<f64> for ScalarExpr {
    fn from(value: f64) -> Self {
        ScalarExpr::Const(value)
    }
}

impl Add for ScalarExpr {
    type Output = ScalarExpr;
    fn add(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }
}

impl Sub for ScalarExpr {
    type Output = ScalarExpr;
    fn sub(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
}

impl Mul for ScalarExpr {
    type Output = ScalarExpr;
    fn mul(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
}

impl Div for ScalarExpr {
    type Output = ScalarExpr;
    fn div(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary(BinOp::Div, Box::new(self), Box::new(rhs))
    }
}

impl Neg for ScalarExpr {
    type Output = ScalarExpr;
    fn neg(self) -> ScalarExpr {
        ScalarExpr::Unary(UnaryOp::Neg, Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{cst, var};

    #[test]
    fn binop_apply() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinOp::Div.apply(3.0, 2.0), 1.5);
        assert_eq!(BinOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(BinOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(BinOp::Pow.apply(2.0, 3.0), 8.0);
    }

    #[test]
    fn reduction_identities() {
        assert_eq!(BinOp::Add.identity(), Some(0.0));
        assert_eq!(BinOp::Mul.identity(), Some(1.0));
        assert_eq!(BinOp::Sub.identity(), None);
        assert!(BinOp::Add.is_reduction_op());
        assert!(!BinOp::Div.is_reduction_op());
    }

    #[test]
    fn unary_apply() {
        assert_eq!(UnaryOp::Neg.apply(2.0), -2.0);
        assert_eq!(UnaryOp::Sqrt.apply(9.0), 3.0);
        assert_eq!(UnaryOp::Abs.apply(-4.0), 4.0);
        assert!((UnaryOp::Exp.apply(0.0) - 1.0).abs() < 1e-12);
        assert!((UnaryOp::Log.apply(1.0)).abs() < 1e-12);
    }

    #[test]
    fn cmp_apply() {
        assert!(CmpOp::Lt.apply(1.0, 2.0));
        assert!(CmpOp::Le.apply(2.0, 2.0));
        assert!(CmpOp::Gt.apply(3.0, 2.0));
        assert!(CmpOp::Ge.apply(2.0, 2.0));
        assert!(CmpOp::Eq.apply(2.0, 2.0));
        assert!(CmpOp::Ne.apply(2.0, 3.0));
    }

    #[test]
    fn loads_are_collected_in_order() {
        let e = load("A", vec![var("i")]) * load("B", vec![var("j")]) + load("C", vec![var("k")]);
        let loads = e.loads();
        assert_eq!(loads.len(), 3);
        assert_eq!(loads[0].array.as_str(), "A");
        assert_eq!(loads[1].array.as_str(), "B");
        assert_eq!(loads[2].array.as_str(), "C");
    }

    #[test]
    fn params_and_index_vars() {
        let e = param("alpha") * load("A", vec![var("i"), var("k")])
            + ScalarExpr::Index(var("j") + cst(1));
        assert!(e.params().contains(&Var::new("alpha")));
        let vars = e.index_vars();
        assert!(vars.contains(&Var::new("i")));
        assert!(vars.contains(&Var::new("k")));
        assert!(vars.contains(&Var::new("j")));
    }

    #[test]
    fn substitute_index_renames_iterators() {
        let e = load("A", vec![var("i"), var("k")]) + ScalarExpr::Index(var("i"));
        let renamed = e.substitute_index(&Var::new("i"), &var("i0"));
        assert!(!renamed.index_vars().contains(&Var::new("i")));
        assert!(renamed.index_vars().contains(&Var::new("i0")));
    }

    #[test]
    fn flop_counting() {
        let e = load("A", vec![var("i")]) * load("B", vec![var("i")]) + fconst(1.0);
        assert_eq!(e.flop_count(), 2);
        let t = fconst(2.0).sqrt().exp();
        assert_eq!(t.flop_count(), 14);
    }

    #[test]
    fn select_display_and_loads() {
        let e = ScalarExpr::select(
            load("A", vec![var("i")]),
            CmpOp::Gt,
            fconst(0.0),
            load("A", vec![var("i")]),
            fconst(0.0),
        );
        assert_eq!(e.loads().len(), 2);
        assert!(format!("{e}").contains('>'));
    }

    #[test]
    fn operator_overloads_build_expected_tree() {
        let e = fconst(1.0) + fconst(2.0) * fconst(3.0);
        match e {
            ScalarExpr::Binary(BinOp::Add, _, rhs) => match *rhs {
                ScalarExpr::Binary(BinOp::Mul, _, _) => {}
                other => panic!("expected Mul on the right, got {other:?}"),
            },
            other => panic!("expected Add at the root, got {other:?}"),
        }
    }
}
