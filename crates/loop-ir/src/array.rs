//! Array declarations and array references (memory accesses).

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::{AffineExpr, Expr, Var};

/// A data container declaration: a multi-dimensional array of `f64` elements
/// with symbolic extents, laid out in row-major order.
#[derive(Clone, PartialEq, Debug)]
pub struct Array {
    /// Name of the array.
    pub name: Var,
    /// Symbolic extent of every dimension, outermost first.
    pub dims: Vec<Expr>,
    /// Size of one element in bytes. Defaults to 8 (`f64`).
    pub elem_size: usize,
}

impl Array {
    /// Creates an array with `f64` elements.
    pub fn new(name: impl Into<Var>, dims: Vec<Expr>) -> Self {
        Array {
            name: name.into(),
            dims,
            elem_size: 8,
        }
    }

    /// Creates an array from named parameters as extents, the common case for
    /// PolyBench-style kernels (`A[NI][NK]`).
    pub fn with_param_dims(name: impl Into<Var>, dims: &[&str]) -> Self {
        Array::new(name, dims.iter().map(|d| Expr::Var(Var::new(*d))).collect())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Concrete extents under the given parameter bindings.
    ///
    /// Returns `None` if any extent cannot be evaluated.
    pub fn concrete_dims(&self, bindings: &BTreeMap<Var, i64>) -> Option<Vec<i64>> {
        self.dims.iter().map(|d| d.eval(bindings)).collect()
    }

    /// Total number of elements under the given bindings.
    pub fn len(&self, bindings: &BTreeMap<Var, i64>) -> Option<i64> {
        self.concrete_dims(bindings)
            .map(|dims| dims.iter().product())
    }

    /// Returns true if the array has zero elements under the given bindings.
    pub fn is_empty(&self, bindings: &BTreeMap<Var, i64>) -> bool {
        self.len(bindings).map(|n| n == 0).unwrap_or(true)
    }

    /// Row-major linear strides (in elements) for each dimension, under the
    /// given parameter bindings. The innermost (last) dimension has stride 1.
    pub fn strides(&self, bindings: &BTreeMap<Var, i64>) -> Option<Vec<i64>> {
        let dims = self.concrete_dims(bindings)?;
        let mut strides = vec![1i64; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        Some(strides)
    }

    /// Total size in bytes under the given bindings.
    pub fn size_bytes(&self, bindings: &BTreeMap<Var, i64>) -> Option<i64> {
        Some(self.len(bindings)? * self.elem_size as i64)
    }
}

impl fmt::Display for Array {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for d in &self.dims {
            write!(f, "[{d}]")?;
        }
        Ok(())
    }
}

/// A reference to an array element: the array name plus one symbolic
/// subscript expression per dimension.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ArrayRef {
    /// Name of the accessed array.
    pub array: Var,
    /// Subscript expressions, outermost dimension first.
    pub indices: Vec<Expr>,
}

impl ArrayRef {
    /// Creates an array reference.
    pub fn new(array: impl Into<Var>, indices: Vec<Expr>) -> Self {
        ArrayRef {
            array: array.into(),
            indices,
        }
    }

    /// Creates a rank-0 (scalar container) reference.
    pub fn scalar(array: impl Into<Var>) -> Self {
        ArrayRef {
            array: array.into(),
            indices: Vec::new(),
        }
    }

    /// Number of subscripts.
    pub fn rank(&self) -> usize {
        self.indices.len()
    }

    /// Affine normal form of every subscript, or `None` if any subscript is
    /// not affine.
    pub fn affine_indices(&self) -> Option<Vec<AffineExpr>> {
        self.indices.iter().map(|e| e.as_affine()).collect()
    }

    /// Affine normal form of every subscript after folding the given
    /// parameter bindings into the expressions (so `A[b * KLEV + k]` with a
    /// known `KLEV` is still affine in `b` and `k`).
    pub fn affine_indices_with(&self, bindings: &BTreeMap<Var, i64>) -> Option<Vec<AffineExpr>> {
        self.indices
            .iter()
            .map(|e| e.fold_params(bindings).as_affine())
            .collect()
    }

    /// The linearized (row-major) access offset as an affine expression over
    /// iterators and parameters, given the array declaration and parameter
    /// bindings used to resolve dimension extents.
    ///
    /// This is the quantity whose per-iterator coefficients are the access
    /// strides minimized by the stride-minimization normalization pass.
    pub fn linear_offset(
        &self,
        array: &Array,
        bindings: &BTreeMap<Var, i64>,
    ) -> Option<AffineExpr> {
        let strides = array.strides(bindings)?;
        if strides.len() != self.indices.len() {
            return None;
        }
        let mut acc = AffineExpr::constant(0);
        for (idx, stride) in self.indices.iter().zip(strides) {
            acc = acc + idx.fold_params(bindings).as_affine()?.scaled(stride);
        }
        Some(acc)
    }

    /// Substitutes a variable in every subscript.
    pub fn substitute(&self, v: &Var, replacement: &Expr) -> ArrayRef {
        ArrayRef {
            array: self.array.clone(),
            indices: self
                .indices
                .iter()
                .map(|e| e.substitute(v, replacement))
                .collect(),
        }
    }

    /// Returns true if any subscript references the variable.
    pub fn uses_var(&self, v: &Var) -> bool {
        self.indices.iter().any(|e| e.uses_var(v))
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.array)?;
        for idx in &self.indices {
            write!(f, "[{idx}]")?;
        }
        Ok(())
    }
}

/// The direction of a memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// The access reads the element.
    Read,
    /// The access writes the element.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// A memory access: an [`ArrayRef`] together with its direction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Access {
    /// The referenced element.
    pub array_ref: ArrayRef,
    /// Whether the element is read or written.
    pub kind: AccessKind,
}

impl Access {
    /// Creates a read access.
    pub fn read(array_ref: ArrayRef) -> Self {
        Access {
            array_ref,
            kind: AccessKind::Read,
        }
    }

    /// Creates a write access.
    pub fn write(array_ref: ArrayRef) -> Self {
        Access {
            array_ref,
            kind: AccessKind::Write,
        }
    }

    /// Returns true if the access is a write.
    pub fn is_write(&self) -> bool {
        self.kind == AccessKind::Write
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.array_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{cst, var};

    fn bindings() -> BTreeMap<Var, i64> {
        [(Var::new("N"), 10), (Var::new("M"), 20)]
            .into_iter()
            .collect()
    }

    #[test]
    fn concrete_dims_and_len() {
        let a = Array::with_param_dims("A", &["N", "M"]);
        assert_eq!(a.rank(), 2);
        assert_eq!(a.concrete_dims(&bindings()), Some(vec![10, 20]));
        assert_eq!(a.len(&bindings()), Some(200));
        assert_eq!(a.size_bytes(&bindings()), Some(1600));
        assert!(!a.is_empty(&bindings()));
    }

    #[test]
    fn row_major_strides() {
        let a = Array::with_param_dims("A", &["N", "M"]);
        assert_eq!(a.strides(&bindings()), Some(vec![20, 1]));
        let b = Array::new("B", vec![cst(4), cst(5), cst(6)]);
        assert_eq!(b.strides(&BTreeMap::new()), Some(vec![30, 6, 1]));
    }

    #[test]
    fn missing_binding_gives_none() {
        let a = Array::with_param_dims("A", &["K"]);
        assert_eq!(a.concrete_dims(&bindings()), None);
        assert!(a.is_empty(&bindings()));
    }

    #[test]
    fn linear_offset_reflects_row_major_layout() {
        let a = Array::with_param_dims("A", &["N", "M"]);
        // A[i][j] -> 20*i + j under N=10, M=20.
        let r = ArrayRef::new("A", vec![var("i"), var("j")]);
        let off = r.linear_offset(&a, &bindings()).unwrap();
        assert_eq!(off.coefficient(&Var::new("i")), 20);
        assert_eq!(off.coefficient(&Var::new("j")), 1);
    }

    #[test]
    fn linear_offset_transposed_access() {
        let a = Array::with_param_dims("A", &["N", "M"]);
        // A[j][i] -> 20*j + i: the stride along i is now 1.
        let r = ArrayRef::new("A", vec![var("j"), var("i")]);
        let off = r.linear_offset(&a, &bindings()).unwrap();
        assert_eq!(off.coefficient(&Var::new("i")), 1);
        assert_eq!(off.coefficient(&Var::new("j")), 20);
    }

    #[test]
    fn linear_offset_rank_mismatch_is_none() {
        let a = Array::with_param_dims("A", &["N", "M"]);
        let r = ArrayRef::new("A", vec![var("i")]);
        assert_eq!(r.linear_offset(&a, &bindings()), None);
    }

    #[test]
    fn array_ref_substitution() {
        let r = ArrayRef::new("A", vec![var("i") + cst(1), var("j")]);
        let s = r.substitute(&Var::new("i"), &var("ii"));
        assert!(s.uses_var(&Var::new("ii")));
        assert!(!s.uses_var(&Var::new("i")));
        assert!(s.uses_var(&Var::new("j")));
    }

    #[test]
    fn scalar_reference_has_rank_zero() {
        let r = ArrayRef::scalar("tmp");
        assert_eq!(r.rank(), 0);
        assert_eq!(format!("{r}"), "tmp");
    }

    #[test]
    fn access_kinds() {
        let r = ArrayRef::new("A", vec![var("i")]);
        assert!(Access::write(r.clone()).is_write());
        assert!(!Access::read(r).is_write());
    }

    #[test]
    fn display_formats() {
        let a = Array::with_param_dims("A", &["N", "M"]);
        assert_eq!(format!("{a}"), "A[N][M]");
        let r = ArrayRef::new("A", vec![var("i"), var("j") + cst(1)]);
        assert_eq!(format!("{r}"), "A[i][(j + 1)]");
    }
}
