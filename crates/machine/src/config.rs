//! Machine descriptions for the execution substrate.

/// Description of the memory hierarchy and compute throughput of the machine
/// the cost model and the cache simulator target.
///
/// The default configuration models the Intel Xeon E5-2680 v3 used in the
/// paper's experiments (§4, "Experimental Setup"): 12 cores at 2.5 GHz,
/// 32 KiB 8-way L1D, 256 KiB 8-way L2, 30 MiB shared L3, AVX2 + FMA.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable name of the modeled machine.
    pub name: String,
    /// Core clock frequency in Hz.
    pub frequency_hz: f64,
    /// Number of physical cores available for parallel loops.
    pub cores: usize,
    /// Double-precision FLOPs per cycle per core for scalar code.
    pub scalar_flops_per_cycle: f64,
    /// SIMD vector width in doubles (4 for AVX2).
    pub vector_width: usize,
    /// Fraction of peak a vectorized loop actually sustains.
    pub vector_efficiency: f64,
    /// L1 data cache capacity in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L2 cache capacity in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Last-level cache capacity in bytes.
    pub l3_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Sustained main-memory bandwidth for one core, bytes per second.
    pub dram_bandwidth: f64,
    /// Factor by which total bandwidth grows when all cores stream
    /// (bandwidth saturates well below the core count).
    pub bandwidth_scalability: f64,
    /// Sustained bandwidth of the L2 cache, bytes per second.
    pub l2_bandwidth: f64,
    /// Sustained bandwidth of the L1 cache, bytes per second.
    pub l1_bandwidth: f64,
    /// Fraction of peak FLOP/s a tuned BLAS library call sustains.
    pub blas_efficiency: f64,
    /// Fixed per-thread fork/join overhead of a parallel region, seconds.
    pub parallel_overhead: f64,
    /// Multiplicative penalty applied to updates that must be performed
    /// atomically (a parallelized reduction).
    pub atomic_penalty: f64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::xeon_e5_2680v3()
    }
}

impl MachineConfig {
    /// The machine used in the paper: Intel Xeon E5-2680 v3 (Haswell-EP),
    /// 12 cores, 2.5 GHz, AVX2 + FMA, 64 GiB of DDR4.
    pub fn xeon_e5_2680v3() -> Self {
        MachineConfig {
            name: "Intel Xeon E5-2680 v3".to_string(),
            frequency_hz: 2.5e9,
            cores: 12,
            // FMA on one port sustained by scalar code: ~2 flops/cycle.
            scalar_flops_per_cycle: 2.0,
            vector_width: 4,
            vector_efficiency: 0.7,
            l1_bytes: 32 * 1024,
            l1_assoc: 8,
            l2_bytes: 256 * 1024,
            l2_assoc: 8,
            l3_bytes: 30 * 1024 * 1024,
            line_bytes: 64,
            dram_bandwidth: 12.0e9,
            bandwidth_scalability: 4.5,
            l2_bandwidth: 60.0e9,
            l1_bandwidth: 150.0e9,
            blas_efficiency: 0.80,
            parallel_overhead: 8.0e-6,
            atomic_penalty: 8.0,
        }
    }

    /// A small machine with tiny caches, useful in tests because cache
    /// capacity effects appear at small problem sizes.
    pub fn tiny_for_tests() -> Self {
        MachineConfig {
            name: "tiny test machine".to_string(),
            frequency_hz: 1.0e9,
            cores: 4,
            scalar_flops_per_cycle: 1.0,
            vector_width: 4,
            vector_efficiency: 0.8,
            l1_bytes: 1024,
            l1_assoc: 4,
            l2_bytes: 8 * 1024,
            l2_assoc: 8,
            l3_bytes: 64 * 1024,
            line_bytes: 64,
            dram_bandwidth: 1.0e9,
            bandwidth_scalability: 2.0,
            l2_bandwidth: 4.0e9,
            l1_bandwidth: 16.0e9,
            blas_efficiency: 0.8,
            parallel_overhead: 1.0e-6,
            atomic_penalty: 8.0,
        }
    }

    /// Peak double-precision FLOP/s of one core with full SIMD + FMA use.
    pub fn peak_flops_per_core(&self) -> f64 {
        self.frequency_hz * self.scalar_flops_per_cycle * self.vector_width as f64
    }

    /// Peak double-precision FLOP/s of the whole socket.
    pub fn peak_flops(&self) -> f64 {
        self.peak_flops_per_core() * self.cores as f64
    }

    /// Effective memory bandwidth when `threads` cores stream concurrently.
    pub fn bandwidth_with_threads(&self, threads: usize) -> f64 {
        let t = threads.max(1) as f64;
        self.dram_bandwidth * t.min(self.bandwidth_scalability)
    }

    /// Number of elements of size `elem` per cache line.
    pub fn elems_per_line(&self, elem: usize) -> usize {
        (self.line_bytes / elem.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_machine() {
        let m = MachineConfig::default();
        assert_eq!(m, MachineConfig::xeon_e5_2680v3());
        assert_eq!(m.cores, 12);
        assert_eq!(m.line_bytes, 64);
    }

    #[test]
    fn peak_flops_match_the_paper_scale() {
        // The paper measures 52.5 GFLOP/s peak with an FMA+AVX benchmark on
        // one core-ish baseline; the configured peak per core lands in the
        // tens of GFLOP/s.
        let m = MachineConfig::xeon_e5_2680v3();
        let peak = m.peak_flops_per_core();
        assert!(peak > 15.0e9 && peak < 60.0e9, "peak/core = {peak}");
        assert!(m.peak_flops() > peak);
    }

    #[test]
    fn bandwidth_saturates() {
        let m = MachineConfig::xeon_e5_2680v3();
        let one = m.bandwidth_with_threads(1);
        let four = m.bandwidth_with_threads(4);
        let twelve = m.bandwidth_with_threads(12);
        assert!(four > one);
        assert!((twelve - m.dram_bandwidth * m.bandwidth_scalability).abs() < 1.0);
    }

    #[test]
    fn elems_per_line() {
        let m = MachineConfig::default();
        assert_eq!(m.elems_per_line(8), 8);
        assert_eq!(m.elems_per_line(4), 16);
        assert_eq!(m.elems_per_line(0), 64);
    }
}
