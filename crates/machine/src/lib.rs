//! # machine — the execution substrate
//!
//! The paper evaluates schedules by running generated code on an Intel Xeon
//! E5-2680 v3. This reproduction has no LLVM backend, so the crate provides
//! the substitutes (see DESIGN.md):
//!
//! * [`exec`] — the compiled loop-nest execution engine: one lowering (flat
//!   array slots, affine offset/stride plans, closed-form zero-trip and
//!   constant-bound loops) drives both the semantic interpreter and the
//!   trace walker,
//! * [`interp`] — the interpreter over concrete `f64` arrays, used to
//!   verify that normalization and optimization preserve semantics; the
//!   pre-refactor tree walker survives as [`interp::reference`] for
//!   differential tests,
//! * [`cache`] + [`trace`] — a set-associative L1/L2 cache simulator fed by
//!   the exact access stream, reproducing the load/evict counters of the
//!   CLOUDSC case study (Table 1),
//! * [`shard`] — block-sharded parallel cache simulation: the trace cut at
//!   block (outermost independent iterator) granularity, one hierarchy
//!   replica per shard on a worker pool, counters merged order-independently
//!   — bit-identical at any worker count, and the engine behind the full
//!   `NBLOCKS = 4096` CLOUDSC trace figures,
//! * [`cost`] — a cache-aware analytical roofline that converts a scheduled
//!   program into an estimated runtime on the configured machine
//!   ([`config::MachineConfig`]), the quantity all figures compare,
//! * [`blas`] — reference BLAS kernels and the near-peak cost of a library
//!   call, the target of the idiom-detection recipes.
//!
//! # The evaluation stack
//!
//! Every experiment funnels through one hot path:
//!
//! ```text
//! program ─▶ access stream ─▶ cache simulator ─▶ cost model ─▶ search
//!           (trace, streamed)  (cache, flat LRU)   (cost, memoized)  (daisy)
//! ```
//!
//! The stack is streaming *and run-level* end to end.
//! [`trace::stream_accesses`] lowers the program through
//! [`exec::CompiledProgram`] and emits every compiled innermost loop as one
//! lockstep group of [`trace::StrideRun`] segments built straight from the
//! affine offset/stride plans — no trace is ever materialized, and
//! individual addresses exist only for sinks that ask for them. The same
//! lowering executes program semantics
//! ([`exec::CompiledProgram::execute`]), which is what makes paper-sized
//! semantic equivalence checks cheap. [`cache::CacheHierarchy`] consumes
//! whole run groups in *line phases* — O(distinct cache lines touched)
//! instead of O(accesses) — keeping each set's LRU order directly in one
//! flat tag array; its counters are bit-identical to the retained
//! per-access pipeline ([`trace::simulate_cache_per_access`]) and to the
//! naive reference simulator ([`cache::reference`]), both kept for
//! equivalence tests and as bench baselines.
//!
//! [`cost::CostModel`] memoizes behind structural hashes at two levels:
//! whole-nest costs, and per-computation *run summaries* (the per-iterator
//! stride facts of each access). The contract: a nest's cost is a pure
//! function of *(machine, thread count, program environment, nest
//! structure)* — see the [`cost`] module docs — which is what lets the
//! `daisy` evolutionary search re-price only the nest a candidate recipe
//! rewrote, and re-price outer-loop permutations from cached summaries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analytic;
pub mod blas;
pub mod cache;
pub mod config;
pub mod cost;
pub mod error;
pub mod exec;
pub mod interp;
pub mod shard;
pub mod trace;

pub use analytic::{estimate_cache, estimate_cache_compiled, AnalyticSink, CacheEstimate};
pub use cache::{reference::ReferenceCacheHierarchy, CacheHierarchy, CacheStats};
pub use config::MachineConfig;
pub use cost::{
    count_flops, CacheAssessment, CostMode, CostModel, CostReport, NestCost, PricedWith,
};
pub use error::{MachineError, Result};
pub use exec::CompiledProgram;
pub use interp::{run_seeded, Interpreter, ProgramData};
pub use shard::{
    effective_sim_workers, simulate_cache_sharded, simulate_cache_sharded_per_access,
    simulate_cache_sharded_with_plan, ShardGranularity, ShardPlan, ShardedCacheStats,
};
pub use trace::{
    simulate_cache, simulate_cache_per_access, simulate_cache_reference, stream_accesses,
    walk_accesses, AccessSink, StrideRun, TraceEntry,
};
