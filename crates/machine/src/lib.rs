//! # machine — the execution substrate
//!
//! The paper evaluates schedules by running generated code on an Intel Xeon
//! E5-2680 v3. This reproduction has no LLVM backend, so the crate provides
//! the substitutes (see DESIGN.md):
//!
//! * [`interp`] — a reference interpreter over concrete `f64` arrays, used to
//!   verify that normalization and optimization preserve semantics,
//! * [`cache`] + [`trace`] — a set-associative L1/L2 cache simulator fed by
//!   the exact access stream, reproducing the load/evict counters of the
//!   CLOUDSC case study (Table 1),
//! * [`cost`] — a cache-aware analytical roofline that converts a scheduled
//!   program into an estimated runtime on the configured machine
//!   ([`config::MachineConfig`]), the quantity all figures compare,
//! * [`blas`] — reference BLAS kernels and the near-peak cost of a library
//!   call, the target of the idiom-detection recipes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blas;
pub mod cache;
pub mod config;
pub mod cost;
pub mod error;
pub mod interp;
pub mod trace;

pub use cache::{CacheHierarchy, CacheStats};
pub use config::MachineConfig;
pub use cost::{count_flops, CostModel, CostReport, NestCost};
pub use error::{MachineError, Result};
pub use interp::{run_seeded, Interpreter, ProgramData};
pub use trace::{simulate_cache, walk_accesses, TraceEntry};
