//! The pre-refactor tree-walking reference interpreter.
//!
//! This is the original `machine::interp` implementation: per-iteration
//! `BTreeMap` binding updates and a symbolic `Expr::eval` per subscript. It
//! is retained as the ground truth for the compiled execution engine
//! ([`crate::exec`]) — the differential test suite asserts bit-identical
//! array state between the two on the whole PolyBench + CLOUDSC corpus, and
//! `bench_pr4` reports the compiled engine's throughput against this
//! baseline.

use loop_ir::array::ArrayRef;
use loop_ir::nest::{BlasCall, BlasKind, Node};
use loop_ir::program::Program;
use loop_ir::scalar::ScalarExpr;

use super::{Bindings, ProgramData};
use crate::blas;
use crate::error::{MachineError, Result};

fn flat_index(
    data: &ProgramData,
    array_ref: &ArrayRef,
    bindings: &Bindings,
) -> Result<(usize, usize)> {
    let slot = data
        .slot(&array_ref.array)
        .ok_or_else(|| MachineError::UnknownArray(array_ref.array.to_string()))?;
    let storage = data.storage(slot);
    if storage.dims.len() != array_ref.indices.len() {
        return Err(MachineError::OutOfBounds {
            array: array_ref.array.to_string(),
            index: -1,
        });
    }
    let mut flat: i64 = 0;
    for ((idx_expr, dim), stride) in array_ref
        .indices
        .iter()
        .zip(&storage.dims)
        .zip(&storage.strides)
    {
        let idx = idx_expr
            .eval(bindings)
            .ok_or_else(|| MachineError::UnboundVariable(idx_expr.to_string()))?;
        if idx < 0 || idx >= *dim {
            return Err(MachineError::OutOfBounds {
                array: array_ref.array.to_string(),
                index: idx,
            });
        }
        flat += idx * stride;
    }
    Ok((slot, flat as usize))
}

fn load(data: &ProgramData, array_ref: &ArrayRef, bindings: &Bindings) -> Result<f64> {
    let (slot, flat) = flat_index(data, array_ref, bindings)?;
    Ok(data.storage(slot).data[flat])
}

fn store(
    data: &mut ProgramData,
    array_ref: &ArrayRef,
    bindings: &Bindings,
    value: f64,
) -> Result<()> {
    let (slot, flat) = flat_index(data, array_ref, bindings)?;
    data.storage_mut(slot).data[flat] = value;
    Ok(())
}

/// The reference interpreter: executes a program over a [`ProgramData`]
/// store by walking the tree with symbolic per-iteration evaluation.
#[derive(Debug, Clone, Default)]
pub struct Interpreter {
    /// Counts of executed computation instances, for test assertions.
    pub executed_statements: u64,
}

impl Interpreter {
    /// Creates a reference interpreter.
    pub fn new() -> Self {
        Interpreter::default()
    }

    /// Executes the program, mutating `data` in place.
    ///
    /// # Errors
    /// Returns an error on out-of-bounds accesses, unbound variables or
    /// non-evaluable loop bounds.
    pub fn run(&mut self, program: &Program, data: &mut ProgramData) -> Result<()> {
        let mut bindings: Bindings = program.params.clone();
        for node in &program.body {
            self.run_node(program, node, &mut bindings, data)?;
        }
        Ok(())
    }

    fn run_node(
        &mut self,
        program: &Program,
        node: &Node,
        bindings: &mut Bindings,
        data: &mut ProgramData,
    ) -> Result<()> {
        match node {
            Node::Loop(l) => {
                let lower = l
                    .lower
                    .eval(bindings)
                    .ok_or_else(|| MachineError::UnboundVariable(l.lower.to_string()))?;
                let upper = l
                    .upper
                    .eval(bindings)
                    .ok_or_else(|| MachineError::UnboundVariable(l.upper.to_string()))?;
                if l.step <= 0 {
                    return Err(MachineError::InvalidLoop(l.iter.to_string()));
                }
                let previous = bindings.get(&l.iter).copied();
                let mut v = lower;
                while v < upper {
                    bindings.insert(l.iter.clone(), v);
                    for child in &l.body {
                        self.run_node(program, child, bindings, data)?;
                    }
                    v += l.step;
                }
                match previous {
                    Some(p) => {
                        bindings.insert(l.iter.clone(), p);
                    }
                    None => {
                        bindings.remove(&l.iter);
                    }
                }
                Ok(())
            }
            Node::Computation(c) => {
                self.executed_statements += 1;
                let value = eval_scalar(&c.value, program, bindings, data)?;
                let result = match c.reduction {
                    Some(op) => {
                        let current = load(data, &c.target, bindings)?;
                        op.apply(current, value)
                    }
                    None => value,
                };
                store(data, &c.target, bindings, result)
            }
            Node::Call(call) => self.run_blas(program, call, bindings, data),
        }
    }

    fn run_blas(
        &mut self,
        program: &Program,
        call: &BlasCall,
        bindings: &Bindings,
        data: &mut ProgramData,
    ) -> Result<()> {
        let dims: Option<Vec<i64>> = call.dims.iter().map(|d| d.eval(bindings)).collect();
        let dims = dims.ok_or_else(|| MachineError::UnboundVariable("blas dims".to_string()))?;
        let alpha = eval_scalar(&call.alpha, program, bindings, data)?;
        let beta = eval_scalar(&call.beta, program, bindings, data)?;
        let input = |i: usize| -> Result<Vec<f64>> {
            let name = call
                .inputs
                .get(i)
                .ok_or_else(|| MachineError::UnknownArray(format!("blas input {i}")))?;
            data.array(name.as_str())
                .map(|s| s.to_vec())
                .ok_or_else(|| MachineError::UnknownArray(name.to_string()))
        };
        match call.kind {
            BlasKind::Gemm => {
                let (m, n, k) = (dims[0] as usize, dims[1] as usize, dims[2] as usize);
                let a = input(0)?;
                let b = input(1)?;
                let c = data
                    .array_mut(call.output.as_str())
                    .ok_or_else(|| MachineError::UnknownArray(call.output.to_string()))?;
                blas::dgemm(m, n, k, alpha, &a, &b, beta, c);
            }
            BlasKind::Syrk => {
                let (n, k) = (dims[0] as usize, dims[1] as usize);
                let a = input(0)?;
                let c = data
                    .array_mut(call.output.as_str())
                    .ok_or_else(|| MachineError::UnknownArray(call.output.to_string()))?;
                blas::dsyrk(n, k, alpha, &a, beta, c);
            }
            BlasKind::Syr2k => {
                let (n, k) = (dims[0] as usize, dims[1] as usize);
                let a = input(0)?;
                let b = input(1)?;
                let c = data
                    .array_mut(call.output.as_str())
                    .ok_or_else(|| MachineError::UnknownArray(call.output.to_string()))?;
                blas::dsyr2k(n, k, alpha, &a, &b, beta, c);
            }
            BlasKind::Gemv => {
                let (m, n) = (dims[0] as usize, dims[1] as usize);
                let a = input(0)?;
                let x = input(1)?;
                let y = data
                    .array_mut(call.output.as_str())
                    .ok_or_else(|| MachineError::UnknownArray(call.output.to_string()))?;
                blas::dgemv(m, n, alpha, &a, &x, beta, y);
            }
        }
        Ok(())
    }
}

fn eval_scalar(
    expr: &ScalarExpr,
    program: &Program,
    bindings: &Bindings,
    data: &ProgramData,
) -> Result<f64> {
    match expr {
        ScalarExpr::Load(r) => load(data, r, bindings),
        ScalarExpr::Const(c) => Ok(*c),
        ScalarExpr::Param(p) => program
            .scalar_params
            .get(p)
            .copied()
            .ok_or_else(|| MachineError::UnboundVariable(p.to_string())),
        ScalarExpr::Index(e) => e
            .eval(bindings)
            .map(|v| v as f64)
            .ok_or_else(|| MachineError::UnboundVariable(e.to_string())),
        ScalarExpr::Unary(op, a) => Ok(op.apply(eval_scalar(a, program, bindings, data)?)),
        ScalarExpr::Binary(op, a, b) => Ok(op.apply(
            eval_scalar(a, program, bindings, data)?,
            eval_scalar(b, program, bindings, data)?,
        )),
        ScalarExpr::Select {
            lhs,
            cmp,
            rhs,
            then,
            otherwise,
        } => {
            let l = eval_scalar(lhs, program, bindings, data)?;
            let r = eval_scalar(rhs, program, bindings, data)?;
            if cmp.apply(l, r) {
                eval_scalar(then, program, bindings, data)
            } else {
                eval_scalar(otherwise, program, bindings, data)
            }
        }
    }
}

/// Convenience: runs a program on seeded data through the reference
/// interpreter and returns the data.
///
/// # Errors
/// Propagates interpreter errors.
pub fn run_seeded(program: &Program) -> Result<ProgramData> {
    let mut data = ProgramData::seeded(program)?;
    Interpreter::new().run(program, &mut data)?;
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;

    #[test]
    fn reference_matches_compiled_engine_on_a_mixed_program() {
        let p = parse_program(
            "program mixed { param N = 9; array A[N][N]; array s[N];
               for i in 0..N {
                 s[i] = 0.0;
                 for j in 0..i { s[i] += A[i][j] * 0.5; }
               }
               for i in 0..N step 2 { s[i] = s[i] * 2.0; } }",
        )
        .unwrap();
        let slow = run_seeded(&p).unwrap();
        let fast = super::super::run_seeded(&p).unwrap();
        assert_eq!(slow, fast, "compiled engine must match the reference");
    }

    #[test]
    fn reference_counts_statements() {
        let p = parse_program(
            "program c { param N = 4; array A[N];
               for i in 0..N { A[i] = 1.0; } }",
        )
        .unwrap();
        let mut interp = Interpreter::new();
        let mut data = ProgramData::zeroed(&p).unwrap();
        interp.run(&p, &mut data).unwrap();
        assert_eq!(interp.executed_statements, 4);
    }
}
