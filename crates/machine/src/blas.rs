//! Reference BLAS kernels used by the interpreter for [`loop_ir::BlasCall`]
//! nodes, plus the roofline-style cost of a tuned library call.
//!
//! The paper's idiom detection replaces recognized BLAS-3 loop nests with
//! vendor library calls; here the "library" is a cache-blocked Rust
//! implementation (for numerical results) and a near-peak roofline estimate
//! (for the cost model).

use crate::config::MachineConfig;

const BLOCK: usize = 64;

/// `C = beta * C + alpha * A * B` with `A` of shape `m×k`, `B` of shape
/// `k×n`, `C` of shape `m×n`, all row-major.
#[allow(clippy::too_many_arguments)] // canonical BLAS signature
pub fn dgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    assert!(a.len() >= m * k, "A is too small");
    assert!(b.len() >= k * n, "B is too small");
    assert!(c.len() >= m * n, "C is too small");
    if beta != 1.0 {
        for v in c.iter_mut().take(m * n) {
            *v *= beta;
        }
    }
    for ib in (0..m).step_by(BLOCK) {
        let iend = (ib + BLOCK).min(m);
        for kb in (0..k).step_by(BLOCK) {
            let kend = (kb + BLOCK).min(k);
            for jb in (0..n).step_by(BLOCK) {
                let jend = (jb + BLOCK).min(n);
                for i in ib..iend {
                    for kk in kb..kend {
                        let aik = alpha * a[i * k + kk];
                        let brow = &b[kk * n..kk * n + n];
                        let crow = &mut c[i * n..i * n + n];
                        for j in jb..jend {
                            crow[j] += aik * brow[j];
                        }
                    }
                }
            }
        }
    }
}

/// `C = beta * C + alpha * A * A^T` (full update of the symmetric result),
/// `A` of shape `n×k`, `C` of shape `n×n`, row-major.
pub fn dsyrk(n: usize, k: usize, alpha: f64, a: &[f64], beta: f64, c: &mut [f64]) {
    assert!(a.len() >= n * k, "A is too small");
    assert!(c.len() >= n * n, "C is too small");
    if beta != 1.0 {
        for v in c.iter_mut().take(n * n) {
            *v *= beta;
        }
    }
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a[i * k + kk] * a[j * k + kk];
            }
            c[i * n + j] += alpha * acc;
        }
    }
}

/// `C = beta * C + alpha * (A * B^T + B * A^T)`, `A`/`B` of shape `n×k`,
/// `C` of shape `n×n`, row-major.
pub fn dsyr2k(n: usize, k: usize, alpha: f64, a: &[f64], b: &[f64], beta: f64, c: &mut [f64]) {
    assert!(a.len() >= n * k, "A is too small");
    assert!(b.len() >= n * k, "B is too small");
    assert!(c.len() >= n * n, "C is too small");
    if beta != 1.0 {
        for v in c.iter_mut().take(n * n) {
            *v *= beta;
        }
    }
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a[i * k + kk] * b[j * k + kk] + b[i * k + kk] * a[j * k + kk];
            }
            c[i * n + j] += alpha * acc;
        }
    }
}

/// `y = beta * y + alpha * A * x`, `A` of shape `m×n`, row-major.
pub fn dgemv(m: usize, n: usize, alpha: f64, a: &[f64], x: &[f64], beta: f64, y: &mut [f64]) {
    assert!(a.len() >= m * n, "A is too small");
    assert!(x.len() >= n, "x is too small");
    assert!(y.len() >= m, "y is too small");
    for i in 0..m {
        let mut acc = 0.0;
        for j in 0..n {
            acc += a[i * n + j] * x[j];
        }
        y[i] = beta * y[i] + alpha * acc;
    }
}

/// Estimated execution time (seconds) of a tuned BLAS call performing `flops`
/// floating-point operations and streaming `bytes` of matrix data, using
/// `threads` cores of `machine`.
///
/// The estimate is a roofline: the call runs at `blas_efficiency` of peak
/// unless memory streaming dominates.
pub fn blas_call_time(machine: &MachineConfig, flops: f64, bytes: f64, threads: usize) -> f64 {
    let threads = threads.max(1).min(machine.cores);
    let compute =
        flops / (machine.peak_flops_per_core() * machine.blas_efficiency * threads as f64);
    let memory = bytes / machine.bandwidth_with_threads(threads);
    compute.max(memory) + machine.parallel_overhead * threads.saturating_sub(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn naive_gemm(
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        b: &[f64],
        beta: f64,
        c: &[f64],
    ) -> Vec<f64> {
        let mut out = c.to_vec();
        for v in out.iter_mut() {
            *v *= beta;
        }
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    out[i * n + j] += alpha * a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        out
    }

    fn pattern(len: usize, seed: u64) -> Vec<f64> {
        (0..len)
            .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 97) as f64 / 10.0)
            .collect()
    }

    #[test]
    fn blocked_gemm_matches_naive() {
        let (m, n, k) = (37, 29, 53);
        let a = pattern(m * k, 1);
        let b = pattern(k * n, 2);
        let c0 = pattern(m * n, 3);
        let mut c = c0.clone();
        dgemm(m, n, k, 1.5, &a, &b, 0.5, &mut c);
        let expected = naive_gemm(m, n, k, 1.5, &a, &b, 0.5, &c0);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn syrk_is_symmetric() {
        let (n, k) = (17, 9);
        let a = pattern(n * k, 5);
        let mut c = vec![0.0; n * n];
        dsyrk(n, k, 1.0, &a, 0.0, &mut c);
        for i in 0..n {
            for j in 0..n {
                assert!((c[i * n + j] - c[j * n + i]).abs() < 1e-12);
            }
        }
        // diagonal entries are sums of squares, hence non-negative.
        for i in 0..n {
            assert!(c[i * n + i] >= 0.0);
        }
    }

    #[test]
    fn syr2k_matches_direct_formula() {
        let (n, k) = (8, 5);
        let a = pattern(n * k, 7);
        let b = pattern(n * k, 11);
        let mut c = vec![1.0; n * n];
        dsyr2k(n, k, 2.0, &a, &b, 3.0, &mut c);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[j * k + kk] + b[i * k + kk] * a[j * k + kk];
                }
                let expected = 3.0 + 2.0 * acc;
                assert!((c[i * n + j] - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gemv_matches_direct_formula() {
        let (m, n) = (6, 4);
        let a = pattern(m * n, 13);
        let x = pattern(n, 17);
        let mut y = vec![2.0; m];
        dgemv(m, n, 1.0, &a, &x, 0.5, &mut y);
        for i in 0..m {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a[i * n + j] * x[j];
            }
            assert!((y[i] - (1.0 + acc)).abs() < 1e-9);
        }
    }

    #[test]
    fn blas_time_is_roofline_limited() {
        let m = MachineConfig::xeon_e5_2680v3();
        // Compute-bound: 2*1000^3 flops on tiny data.
        let t_compute = blas_call_time(&m, 2e9, 24e6, 1);
        assert!(t_compute > 2e9 / m.peak_flops_per_core() * 0.9);
        // Memory-bound: few flops on lots of data.
        let t_memory = blas_call_time(&m, 1e6, 8e9, 1);
        assert!(t_memory >= 8e9 / m.dram_bandwidth * 0.99);
        // More threads help.
        assert!(blas_call_time(&m, 2e9, 24e6, 8) < t_compute);
    }
}
