//! Memory-access trace generation.
//!
//! Walks the iteration space of a program and emits the exact sequence of
//! element accesses (without computing values), which feeds the cache
//! simulator for experiments such as the CLOUDSC Table 1 measurement.

use std::collections::BTreeMap;

use loop_ir::array::AccessKind;
use loop_ir::expr::Var;
use loop_ir::nest::Node;
use loop_ir::program::Program;

use crate::cache::{AddressMap, CacheHierarchy};
use crate::config::MachineConfig;
use crate::error::{MachineError, Result};

/// One entry of an access trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Byte address of the access.
    pub address: u64,
    /// Whether it is a write.
    pub is_write: bool,
}

/// Walks the program's accesses in execution order, invoking `sink` for each.
///
/// # Errors
/// Returns an error when bounds or subscripts cannot be evaluated.
pub fn walk_accesses(
    program: &Program,
    mut sink: impl FnMut(TraceEntry),
) -> Result<u64> {
    let map = AddressMap::for_program(program);
    let mut bindings: BTreeMap<Var, i64> = program.params.clone();
    let mut count = 0u64;
    for node in &program.body {
        walk_node(program, node, &map, &mut bindings, &mut sink, &mut count)?;
    }
    Ok(count)
}

fn walk_node(
    program: &Program,
    node: &Node,
    map: &AddressMap,
    bindings: &mut BTreeMap<Var, i64>,
    sink: &mut impl FnMut(TraceEntry),
    count: &mut u64,
) -> Result<()> {
    match node {
        Node::Loop(l) => {
            let lower = l
                .lower
                .eval(bindings)
                .ok_or_else(|| MachineError::UnboundVariable(l.lower.to_string()))?;
            let upper = l
                .upper
                .eval(bindings)
                .ok_or_else(|| MachineError::UnboundVariable(l.upper.to_string()))?;
            if l.step <= 0 {
                return Err(MachineError::InvalidLoop(l.iter.to_string()));
            }
            let previous = bindings.get(&l.iter).copied();
            let mut v = lower;
            while v < upper {
                bindings.insert(l.iter.clone(), v);
                for child in &l.body {
                    walk_node(program, child, map, bindings, sink, count)?;
                }
                v += l.step;
            }
            match previous {
                Some(p) => {
                    bindings.insert(l.iter.clone(), p);
                }
                None => {
                    bindings.remove(&l.iter);
                }
            }
            Ok(())
        }
        Node::Computation(c) => {
            for access in c.accesses() {
                let array = program.array(&access.array_ref.array).map_err(|_| {
                    MachineError::UnknownArray(access.array_ref.array.to_string())
                })?;
                let strides = array
                    .strides(&program.params)
                    .ok_or_else(|| MachineError::UnboundSize(array.name.to_string()))?;
                let mut offset = 0i64;
                for (idx, stride) in access.array_ref.indices.iter().zip(&strides) {
                    let value = idx
                        .eval(bindings)
                        .ok_or_else(|| MachineError::UnboundVariable(idx.to_string()))?;
                    offset += value * stride;
                }
                let address = map
                    .address(access.array_ref.array.as_str(), offset, array.elem_size)
                    .ok_or_else(|| MachineError::UnknownArray(access.array_ref.array.to_string()))?;
                *count += 1;
                sink(TraceEntry {
                    address,
                    is_write: access.kind == AccessKind::Write,
                });
            }
            Ok(())
        }
        // Library calls are opaque to the trace: their internal access
        // pattern belongs to the library, not to the program under study.
        Node::Call(_) => Ok(()),
    }
}

/// Runs the whole access trace of a program through a two-level cache
/// simulator and returns the hierarchy with its counters.
///
/// # Errors
/// Propagates trace-generation errors.
pub fn simulate_cache(program: &Program, machine: &MachineConfig) -> Result<CacheHierarchy> {
    let mut cache = CacheHierarchy::from_machine(machine);
    walk_accesses(program, |entry| cache.access(entry.address))?;
    Ok(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;

    #[test]
    fn trace_counts_match_iteration_space() {
        let p = parse_program(
            "program t { param N = 10; array A[N]; array B[N];
               for i in 0..N { B[i] = A[i] * 2.0; } }",
        )
        .unwrap();
        let mut writes = 0;
        let total = walk_accesses(&p, |e| {
            if e.is_write {
                writes += 1;
            }
        })
        .unwrap();
        assert_eq!(total, 20); // one read + one write per iteration
        assert_eq!(writes, 10);
    }

    #[test]
    fn reduction_target_counts_read_and_write() {
        let p = parse_program(
            "program r { param N = 4; array A[N]; array s[1];
               for i in 0..N { s[0] += A[i]; } }",
        )
        .unwrap();
        let total = walk_accesses(&p, |_| {}).unwrap();
        // per iteration: read A, read s (reduction), write s.
        assert_eq!(total, 12);
    }

    #[test]
    fn contiguous_vs_strided_cache_behaviour() {
        // Row-major traversal of a 64x64 matrix touches each line once;
        // column-major traversal of the same matrix misses on every access
        // once the working set exceeds the tiny L1.
        let row = parse_program(
            "program row { param N = 64; array A[N][N];
               for i in 0..N { for j in 0..N { A[i][j] = 1.0; } } }",
        )
        .unwrap();
        let col = parse_program(
            "program col { param N = 64; array A[N][N];
               for j in 0..N { for i in 0..N { A[i][j] = 1.0; } } }",
        )
        .unwrap();
        let machine = MachineConfig::tiny_for_tests();
        let row_cache = simulate_cache(&row, &machine).unwrap();
        let col_cache = simulate_cache(&col, &machine).unwrap();
        assert!(row_cache.l1().loads < col_cache.l1().loads);
        // Row-major: 64*64 doubles = 512 lines.
        assert_eq!(row_cache.l1().loads, 512);
        // Column-major with a 1 KiB L1: essentially every access misses.
        assert!(col_cache.l1().loads > 3000);
    }

    #[test]
    fn blas_calls_are_opaque() {
        use loop_ir::prelude::*;
        let call = BlasCall {
            kind: BlasKind::Gemm,
            output: Var::new("C"),
            inputs: vec![Var::new("A"), Var::new("B")],
            dims: vec![var("N"), var("N"), var("N")],
            alpha: fconst(1.0),
            beta: fconst(1.0),
        };
        let p = Program::builder("b")
            .param("N", 8)
            .array("A", &["N", "N"])
            .array("B", &["N", "N"])
            .array("C", &["N", "N"])
            .node(Node::Call(call))
            .build()
            .unwrap();
        assert_eq!(walk_accesses(&p, |_| {}).unwrap(), 0);
    }

    #[test]
    fn symbolic_upper_bounds_use_parameters() {
        let p = parse_program(
            "program s { param N = 6; array A[N][N];
               for i in 0..N { for j in 0..i { A[i][j] = 0.0; } } }",
        )
        .unwrap();
        let total = walk_accesses(&p, |_| {}).unwrap();
        // triangular: 0+1+...+5 = 15 writes.
        assert_eq!(total, 15);
    }
}
