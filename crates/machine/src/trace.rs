//! Streaming memory-access trace generation.
//!
//! Walks the iteration space of a program and feeds the exact sequence of
//! element accesses (without computing values) to an [`AccessSink`] — the
//! cache simulator for experiments such as the CLOUDSC Table 1 measurement.
//! Nothing is ever materialized: the trace is produced and consumed one
//! access (or one constant-stride *run*) at a time.
//!
//! The walk itself lives in the shared compiled execution engine
//! ([`crate::exec`]): the program is lowered once into affine offset/stride
//! plans and [`CompiledProgram::stream`] emits the trace straight from those
//! plans — every compiled innermost loop becomes one [`AccessSink::run_group`]
//! of lockstep [`StrideRun`] segments (one per array reference), without ever
//! expanding them into individual addresses. Sinks that want the per-access
//! stream get it from the default `run_group` expansion; the cache sink
//! instead forwards whole groups to the run-aware simulator
//! ([`crate::cache::CacheHierarchy::access_run_group`]), which processes a
//! run in time proportional to the distinct cache lines it touches. The
//! pre-refactor per-iteration symbolic walker is retained as
//! [`walk_accesses_symbolic`], and the per-access simulation pipeline as
//! [`simulate_cache_per_access`] — the ground truths of the equivalence
//! tests and the bench baselines.

use loop_ir::array::AccessKind;
use loop_ir::nest::Node;
use loop_ir::program::Program;

use crate::cache::{AddressMap, CacheHierarchy};
use crate::config::MachineConfig;
use crate::error::{MachineError, Result};
use crate::exec::CompiledProgram;
use crate::interp::Bindings;

/// One entry of an access trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Byte address of the access.
    pub address: u64,
    /// Whether it is a write.
    pub is_write: bool,
}

/// One constant-stride access run of a compiled innermost loop: the `count`
/// addresses `base, base + stride, …` of a single array reference, emitted
/// straight from the compiled offset/stride plan without expansion.
///
/// Runs travel in *groups* (one group per innermost-loop execution) whose
/// members advance in lockstep: iteration `i` touches every run's
/// `base + i·stride`, in run order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrideRun {
    /// Byte address of the first access.
    pub base: u64,
    /// Byte distance between consecutive accesses (zero and negative are
    /// valid: loop-invariant and reversal subscripts).
    pub stride: i64,
    /// Number of accesses in the run (the loop's trip count).
    pub count: u64,
    /// Slot of the accessed array in the compiled program's array table.
    pub array: u32,
    /// Whether every access of the run is a write.
    pub is_write: bool,
}

/// Consumer of a streamed access trace.
///
/// Implementors receive the trace in execution order, either access by
/// access or — when the walker proves a constant-stride innermost loop —
/// as whole runs or lockstep run groups. The defaults expand
/// [`run`](AccessSink::run) and [`run_group`](AccessSink::run_group) to
/// individual accesses, so a sink only interested in single entries
/// implements [`access`](AccessSink::access) alone.
pub trait AccessSink {
    /// Consumes one access.
    fn access(&mut self, entry: TraceEntry);

    /// Consumes `count` accesses at `start, start + stride, …`.
    fn run(&mut self, start: u64, stride: i64, count: u64, is_write: bool) {
        let mut address = start as i64;
        for _ in 0..count {
            self.access(TraceEntry {
                address: address as u64,
                is_write,
            });
            address += stride;
        }
    }

    /// Consumes a group of lockstep runs — the access plans of one compiled
    /// innermost loop execution: iteration `i` emits `runs[0].base +
    /// i·stride`, then `runs[1]`, … The default expands the group to
    /// individual accesses in exactly that interleaved order (a single-run
    /// group delegates to [`run`](AccessSink::run)), preserving the
    /// per-access trace for sinks that do not understand runs.
    fn run_group(&mut self, runs: &[StrideRun]) {
        match runs {
            [] => {}
            [r] => self.run(r.base, r.stride, r.count, r.is_write),
            _ => {
                let mut addresses: Vec<i64> = runs.iter().map(|r| r.base as i64).collect();
                for _ in 0..runs[0].count {
                    for (slot, r) in addresses.iter_mut().zip(runs) {
                        self.access(TraceEntry {
                            address: *slot as u64,
                            is_write: r.is_write,
                        });
                        *slot += r.stride;
                    }
                }
            }
        }
    }

    /// Announces that everything emitted until the matching
    /// [`end_repeat`](AccessSink::end_repeat) repeats `times` times in
    /// identical form — the emitter found a loop whose subtree's trace does
    /// not depend on its iterator. A sink that folds accesses into
    /// order-independent summaries may return `true`; it then receives the
    /// body *once* and is responsible for scaling. The default refuses, and
    /// the emitter streams every iteration — per-access and simulating
    /// sinks stay bit-identical without opting in.
    fn begin_repeat(&mut self, times: u64) -> bool {
        let _ = times;
        false
    }

    /// Closes the innermost accepted [`begin_repeat`](AccessSink::begin_repeat).
    fn end_repeat(&mut self) {}
}

/// Adapter turning a closure into an [`AccessSink`].
struct FnSink<F: FnMut(TraceEntry)>(F);

impl<F: FnMut(TraceEntry)> AccessSink for FnSink<F> {
    fn access(&mut self, entry: TraceEntry) {
        (self.0)(entry)
    }
}

/// Walks the program's accesses in execution order, invoking `sink` for each.
///
/// # Errors
/// Returns an error when bounds or subscripts cannot be evaluated.
pub fn walk_accesses(program: &Program, sink: impl FnMut(TraceEntry)) -> Result<u64> {
    stream_accesses(program, &mut FnSink(sink))
}

/// Streams the program's accesses in execution order into `sink`,
/// constant-stride innermost loops as closed-form runs. Returns the total
/// number of accesses streamed.
///
/// The program is lowered through the compiled execution engine once per
/// call; callers streaming the same program repeatedly should lower once
/// with [`CompiledProgram::lower`] and call [`CompiledProgram::stream`].
///
/// # Errors
/// Returns an error when bounds or subscripts cannot be evaluated.
pub fn stream_accesses(program: &Program, sink: &mut impl AccessSink) -> Result<u64> {
    CompiledProgram::lower(program)?.stream(sink)
}

/// Sink feeding a [`CacheHierarchy`], forwarding runs and whole run groups
/// to the closed-form fast paths. Shared with the sharded driver
/// (`shard::simulate_cache_sharded`), which feeds one replica per shard
/// through the identical sink so per-shard counters stay bit-compatible
/// with [`simulate_cache`].
pub(crate) struct CacheSink<'a> {
    pub(crate) cache: &'a mut CacheHierarchy,
}

impl AccessSink for CacheSink<'_> {
    fn access(&mut self, entry: TraceEntry) {
        self.cache.access(entry.address);
    }

    fn run(&mut self, start: u64, stride: i64, count: u64, _is_write: bool) {
        self.cache.access_run(start, stride, count);
    }

    fn run_group(&mut self, runs: &[StrideRun]) {
        self.cache.access_run_group(runs);
    }
}

/// Runs the whole access trace of a program through a two-level cache
/// simulator and returns the hierarchy with its counters. The trace is
/// streamed run-compressed: compiled innermost loops reach the simulator as
/// lockstep [`StrideRun`] groups and are processed in time proportional to
/// the distinct cache lines they touch — with counters bit-identical to
/// feeding the simulator one access at a time
/// ([`simulate_cache_per_access`], the differential baseline).
///
/// # Errors
/// Propagates trace-generation errors.
pub fn simulate_cache(program: &Program, machine: &MachineConfig) -> Result<CacheHierarchy> {
    let _span = telemetry::span("simulate_cache");
    let mut cache = CacheHierarchy::from_machine(machine);
    stream_accesses(program, &mut CacheSink { cache: &mut cache })?;
    record_cache_counters(&cache);
    Ok(cache)
}

/// Publishes the counters of one finished simulation. The per-level stats
/// are summed at this boundary rather than inside the access loops, so the
/// simulator's hot paths carry no per-access telemetry cost.
fn record_cache_counters(cache: &CacheHierarchy) {
    if !telemetry::enabled() {
        return;
    }
    telemetry::counter("machine.cache.simulations", 1);
    telemetry::counter("machine.cache.accesses", cache.accesses());
    telemetry::counter("machine.cache.probes", cache.probes());
    let (l1, l2) = (cache.l1(), cache.l2());
    telemetry::counter("machine.cache.l1.hits", l1.hits);
    telemetry::counter("machine.cache.l1.misses", l1.misses);
    telemetry::counter("machine.cache.l1.evicts", l1.evicts);
    telemetry::counter("machine.cache.l2.hits", l2.hits);
    telemetry::counter("machine.cache.l2.misses", l2.misses);
    telemetry::counter("machine.cache.l2.evicts", l2.evicts);
}

/// Sink replicating the PR 1 evaluation pipeline: single-access runs still
/// collapse through [`CacheHierarchy::access_run`], but interleaved
/// multi-access loops expand to one simulated access per trace entry (the
/// default [`AccessSink::run_group`]).
pub(crate) struct PerAccessCacheSink<'a> {
    pub(crate) cache: &'a mut CacheHierarchy,
}

impl AccessSink for PerAccessCacheSink<'_> {
    fn access(&mut self, entry: TraceEntry) {
        self.cache.access(entry.address);
    }

    fn run(&mut self, start: u64, stride: i64, count: u64, _is_write: bool) {
        self.cache.access_run(start, stride, count);
    }
}

/// The pre-run-compression simulation pipeline: every access of an
/// interleaved innermost loop is simulated individually. Retained as the
/// baseline [`simulate_cache`] is benchmarked and differentially tested
/// against — both must report bit-identical counters on every program.
///
/// # Errors
/// Propagates trace-generation errors.
pub fn simulate_cache_per_access(
    program: &Program,
    machine: &MachineConfig,
) -> Result<CacheHierarchy> {
    let mut cache = CacheHierarchy::from_machine(machine);
    stream_accesses(program, &mut PerAccessCacheSink { cache: &mut cache })?;
    record_cache_counters(&cache);
    Ok(cache)
}

/// Simulates the trace on the naive [`reference`](crate::cache::reference)
/// simulator through the pre-refactor per-access walk. This is the baseline
/// the equivalence tests and benches compare [`simulate_cache`] against.
///
/// # Errors
/// Propagates trace-generation errors.
pub fn simulate_cache_reference(
    program: &Program,
    machine: &MachineConfig,
) -> Result<crate::cache::reference::ReferenceCacheHierarchy> {
    let mut cache = crate::cache::reference::ReferenceCacheHierarchy::from_machine(machine);
    walk_accesses_symbolic(program, |entry| cache.access(entry.address))?;
    Ok(cache)
}

/// The pre-refactor walker: per-iteration binding updates and per-subscript
/// symbolic evaluation, no compilation, no runs. Kept as the ground truth
/// for the compiled streaming walker's equivalence tests.
pub fn walk_accesses_symbolic(program: &Program, mut sink: impl FnMut(TraceEntry)) -> Result<u64> {
    fn walk(
        program: &Program,
        node: &Node,
        map: &AddressMap,
        bindings: &mut Bindings,
        sink: &mut impl FnMut(TraceEntry),
        count: &mut u64,
    ) -> Result<()> {
        match node {
            Node::Loop(l) => {
                let lower = l
                    .lower
                    .eval(bindings)
                    .ok_or_else(|| MachineError::UnboundVariable(l.lower.to_string()))?;
                let upper = l
                    .upper
                    .eval(bindings)
                    .ok_or_else(|| MachineError::UnboundVariable(l.upper.to_string()))?;
                if l.step <= 0 {
                    return Err(MachineError::InvalidLoop(l.iter.to_string()));
                }
                let previous = bindings.get(&l.iter).copied();
                let mut v = lower;
                while v < upper {
                    bindings.insert(l.iter.clone(), v);
                    for child in &l.body {
                        walk(program, child, map, bindings, sink, count)?;
                    }
                    v += l.step;
                }
                match previous {
                    Some(p) => {
                        bindings.insert(l.iter.clone(), p);
                    }
                    None => {
                        bindings.remove(&l.iter);
                    }
                }
                Ok(())
            }
            Node::Computation(c) => {
                for access in c.accesses() {
                    let array = program.array(&access.array_ref.array).map_err(|_| {
                        MachineError::UnknownArray(access.array_ref.array.to_string())
                    })?;
                    let strides = array
                        .strides(&program.params)
                        .ok_or_else(|| MachineError::UnboundSize(array.name.to_string()))?;
                    let mut offset = 0i64;
                    for (idx, stride) in access.array_ref.indices.iter().zip(&strides) {
                        let value = idx
                            .eval(bindings)
                            .ok_or_else(|| MachineError::UnboundVariable(idx.to_string()))?;
                        offset += value * stride;
                    }
                    let address = map
                        .address(access.array_ref.array.as_str(), offset, array.elem_size)
                        .ok_or_else(|| {
                            MachineError::UnknownArray(access.array_ref.array.to_string())
                        })?;
                    *count += 1;
                    sink(TraceEntry {
                        address,
                        is_write: access.kind == AccessKind::Write,
                    });
                }
                Ok(())
            }
            Node::Call(_) => Ok(()),
        }
    }

    let map = AddressMap::for_program(program);
    let mut bindings: Bindings = program.params.clone();
    let mut count = 0u64;
    for node in &program.body {
        walk(program, node, &map, &mut bindings, &mut sink, &mut count)?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;

    #[test]
    fn trace_counts_match_iteration_space() {
        let p = parse_program(
            "program t { param N = 10; array A[N]; array B[N];
               for i in 0..N { B[i] = A[i] * 2.0; } }",
        )
        .unwrap();
        let mut writes = 0;
        let total = walk_accesses(&p, |e| {
            if e.is_write {
                writes += 1;
            }
        })
        .unwrap();
        assert_eq!(total, 20); // one read + one write per iteration
        assert_eq!(writes, 10);
    }

    #[test]
    fn reduction_target_counts_read_and_write() {
        let p = parse_program(
            "program r { param N = 4; array A[N]; array s[1];
               for i in 0..N { s[0] += A[i]; } }",
        )
        .unwrap();
        let total = walk_accesses(&p, |_| {}).unwrap();
        // per iteration: read A, read s (reduction), write s.
        assert_eq!(total, 12);
    }

    #[test]
    fn contiguous_vs_strided_cache_behaviour() {
        // Row-major traversal of a 64x64 matrix touches each line once;
        // column-major traversal of the same matrix misses on every access
        // once the working set exceeds the tiny L1.
        let row = parse_program(
            "program row { param N = 64; array A[N][N];
               for i in 0..N { for j in 0..N { A[i][j] = 1.0; } } }",
        )
        .unwrap();
        let col = parse_program(
            "program col { param N = 64; array A[N][N];
               for j in 0..N { for i in 0..N { A[i][j] = 1.0; } } }",
        )
        .unwrap();
        let machine = MachineConfig::tiny_for_tests();
        let row_cache = simulate_cache(&row, &machine).unwrap();
        let col_cache = simulate_cache(&col, &machine).unwrap();
        assert!(row_cache.l1().loads < col_cache.l1().loads);
        // Row-major: 64*64 doubles = 512 lines.
        assert_eq!(row_cache.l1().loads, 512);
        // Column-major with a 1 KiB L1: essentially every access misses.
        assert!(col_cache.l1().loads > 3000);
    }

    #[test]
    fn blas_calls_are_opaque() {
        use loop_ir::prelude::*;
        let call = BlasCall {
            kind: BlasKind::Gemm,
            output: Var::new("C"),
            inputs: vec![Var::new("A"), Var::new("B")],
            dims: vec![var("N"), var("N"), var("N")],
            alpha: fconst(1.0),
            beta: fconst(1.0),
        };
        let p = Program::builder("b")
            .param("N", 8)
            .array("A", &["N", "N"])
            .array("B", &["N", "N"])
            .array("C", &["N", "N"])
            .node(Node::Call(call))
            .build()
            .unwrap();
        assert_eq!(walk_accesses(&p, |_| {}).unwrap(), 0);
    }

    #[test]
    fn symbolic_upper_bounds_use_parameters() {
        let p = parse_program(
            "program s { param N = 6; array A[N][N];
               for i in 0..N { for j in 0..i { A[i][j] = 0.0; } } }",
        )
        .unwrap();
        let total = walk_accesses(&p, |_| {}).unwrap();
        // triangular: 0+1+...+5 = 15 writes.
        assert_eq!(total, 15);
    }

    /// The compiled streaming walker must emit exactly the trace of the
    /// symbolic walker — same addresses, same kinds, same order.
    fn assert_identical_traces(source: &str) {
        let p = parse_program(source).unwrap();
        let mut streamed = Vec::new();
        let n1 = walk_accesses(&p, |e| streamed.push(e)).unwrap();
        let mut symbolic = Vec::new();
        let n2 = walk_accesses_symbolic(&p, |e| symbolic.push(e)).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(streamed, symbolic);
    }

    #[test]
    fn streaming_trace_matches_symbolic_trace() {
        // Perfect nest, multiple interleaved accesses.
        assert_identical_traces(
            "program gemm { param N = 12; array A[N][N]; array B[N][N]; array C[N][N];
               for i in 0..N { for j in 0..N { for k in 0..N {
                 C[i][j] += A[i][k] * B[k][j];
               } } } }",
        );
        // Imperfect nest with a computation between loops.
        assert_identical_traces(
            "program imp { param N = 9; array A[N][N]; array s[N];
               for i in 0..N {
                 s[i] = 0.0;
                 for j in 0..N { s[i] += A[i][j]; }
               } }",
        );
        // Strided loop with an offset subscript.
        assert_identical_traces(
            "program st { param N = 40; array A[N]; array B[N];
               for i in 0..N step 3 { B[i] = A[i] * 1.5; } }",
        );
        // Triangular bounds.
        assert_identical_traces(
            "program tri { param N = 15; array A[N][N];
               for i in 0..N { for j in 0..i { A[i][j] = 2.0; } } }",
        );
        // Non-affine subscript (modulo) forces the symbolic fallback.
        assert_identical_traces(
            "program na { param N = 16; array A[N];
               for i in 0..N { A[i % 4] = 1.0; } }",
        );
        // Single-access innermost loop: the run fast path.
        assert_identical_traces(
            "program run { param N = 200; array A[N];
               for i in 0..N { A[i] = 0.0; } }",
        );
        // Negative-stride access: the reversal subscript still compiles.
        assert_identical_traces(
            "program rev { param N = 32; array A[N]; array B[N];
               for i in 0..N { B[i] = A[N - 1 - i]; } }",
        );
        // Zero-trip loops emit nothing.
        assert_identical_traces(
            "program zt { param N = 0; array A[8];
               for i in 0..N { A[i] = 1.0; } }",
        );
    }

    #[test]
    fn streaming_cache_matches_reference_cache() {
        let machine = MachineConfig::tiny_for_tests();
        for source in [
            "program gemm { param N = 24; array A[N][N]; array B[N][N]; array C[N][N];
               for i in 0..N { for j in 0..N { for k in 0..N {
                 C[i][j] += A[i][k] * B[k][j];
               } } } }",
            "program col { param N = 48; array A[N][N];
               for j in 0..N { for i in 0..N { A[i][j] = 1.0; } } }",
            "program copy { param N = 3000; array A[N]; array B[N];
               for i in 0..N { B[i] = A[i]; } }",
        ] {
            let p = parse_program(source).unwrap();
            let fast = simulate_cache(&p, &machine).unwrap();
            let slow = simulate_cache_reference(&p, &machine).unwrap();
            assert_eq!(fast.accesses(), slow.accesses(), "{}", p.name);
            assert_eq!(fast.l1(), slow.l1(), "{} L1", p.name);
            assert_eq!(fast.l2(), slow.l2(), "{} L2", p.name);
        }
    }
}
