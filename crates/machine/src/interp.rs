//! Program interpretation over concrete `f64` arrays.
//!
//! The interpreter is the ground truth used by the test suite to check that
//! transformations — fission, interchange, tiling, fusion, idiom replacement
//! — preserve semantics, exactly the property normalization must have.
//!
//! Since PR 4 the default [`Interpreter`] drives the compiled execution
//! engine ([`crate::exec`]): the program is lowered once (flat array
//! storage, precomputed affine offset/stride plans for innermost loops,
//! closed-form zero-trip and constant-bound handling) and then executed
//! without any per-iteration symbolic evaluation. The pre-refactor
//! tree-walking interpreter survives as [`reference`] and is the baseline of
//! the differential tests and the `bench_pr4` throughput snapshot: both
//! produce bit-identical array state on every valid program.

use std::collections::BTreeMap;

use loop_ir::expr::Var;
use loop_ir::program::Program;

use crate::error::{MachineError, Result};
use crate::exec::CompiledProgram;

pub mod reference;

/// Concrete storage for every array of a program, laid out row-major.
///
/// Arrays are stored as a dense vector sorted by name, so the compiled
/// execution engine resolves them to indices once at lowering time instead
/// of per access.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgramData {
    names: Vec<Var>,
    arrays: Vec<ArrayStorage>,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ArrayStorage {
    pub(crate) dims: Vec<i64>,
    pub(crate) strides: Vec<i64>,
    pub(crate) data: Vec<f64>,
}

impl ProgramData {
    /// Allocates storage for every array of the program, initializing every
    /// element with `init(array_name, flat_index)`.
    ///
    /// # Errors
    /// Returns an error if an array extent cannot be evaluated under the
    /// program's parameters.
    pub fn new_with(
        program: &Program,
        mut init: impl FnMut(&str, usize) -> f64,
    ) -> Result<ProgramData> {
        let mut names = Vec::with_capacity(program.arrays.len());
        let mut arrays = Vec::with_capacity(program.arrays.len());
        for (name, array) in &program.arrays {
            let dims = array
                .concrete_dims(&program.params)
                .ok_or_else(|| MachineError::UnboundSize(name.to_string()))?;
            if dims.iter().any(|d| *d < 0) {
                return Err(MachineError::UnboundSize(name.to_string()));
            }
            let strides = array
                .strides(&program.params)
                .ok_or_else(|| MachineError::UnboundSize(name.to_string()))?;
            let len: i64 = dims.iter().product();
            let data = (0..len as usize).map(|i| init(name.as_str(), i)).collect();
            names.push(name.clone());
            arrays.push(ArrayStorage {
                dims,
                strides,
                data,
            });
        }
        Ok(ProgramData { names, arrays })
    }

    /// Allocates zero-initialized storage.
    pub fn zeroed(program: &Program) -> Result<ProgramData> {
        ProgramData::new_with(program, |_, _| 0.0)
    }

    /// Allocates storage with a deterministic, array-dependent pattern, the
    /// initialization used by the benchmark suite (a stand-in for the
    /// PolyBench init kernels).
    pub fn seeded(program: &Program) -> Result<ProgramData> {
        ProgramData::new_with(program, |name, i| {
            let h = name
                .bytes()
                .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
            let x = (h.wrapping_add(i as u64).wrapping_mul(2654435761)) % 1000;
            (x as f64) / 1000.0 + 0.01
        })
    }

    /// Returns a flat view of an array's contents.
    pub fn array(&self, name: &str) -> Option<&[f64]> {
        self.slot_by_str(name)
            .map(|slot| self.arrays[slot].data.as_slice())
    }

    /// Returns a mutable flat view of an array's contents.
    pub fn array_mut(&mut self, name: &str) -> Option<&mut [f64]> {
        self.slot_by_str(name)
            .map(|slot| self.arrays[slot].data.as_mut_slice())
    }

    /// The concrete dimensions of an array.
    pub fn dims(&self, name: &str) -> Option<&[i64]> {
        self.slot_by_str(name)
            .map(|slot| self.arrays[slot].dims.as_slice())
    }

    /// Maximum absolute difference between the same array in two data sets,
    /// used by equivalence tests.
    pub fn max_abs_diff(&self, other: &ProgramData, name: &str) -> Option<f64> {
        let a = self.array(name)?;
        let b = other.array(name)?;
        if a.len() != b.len() {
            return None;
        }
        Some(
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Array names in storage (slot) order.
    pub(crate) fn array_names(&self) -> &[Var] {
        &self.names
    }

    /// Storage slot of an array, if allocated.
    pub(crate) fn slot(&self, name: &Var) -> Option<usize> {
        self.names.binary_search(name).ok()
    }

    fn slot_by_str(&self, name: &str) -> Option<usize> {
        self.names.binary_search_by(|n| n.as_str().cmp(name)).ok()
    }

    /// Storage of a slot.
    pub(crate) fn storage(&self, slot: usize) -> &ArrayStorage {
        &self.arrays[slot]
    }

    /// Mutable storage of a slot.
    pub(crate) fn storage_mut(&mut self, slot: usize) -> &mut ArrayStorage {
        &mut self.arrays[slot]
    }
}

/// The interpreter: executes a program over a [`ProgramData`] store through
/// the compiled execution engine.
#[derive(Debug, Clone, Default)]
pub struct Interpreter {
    /// Counts of executed computation instances, for test assertions.
    pub executed_statements: u64,
}

impl Interpreter {
    /// Creates an interpreter.
    pub fn new() -> Self {
        Interpreter::default()
    }

    /// Executes the program, mutating `data` in place.
    ///
    /// The program is lowered with [`CompiledProgram::lower`] and executed
    /// once; callers running the same program repeatedly should lower once
    /// themselves and call [`CompiledProgram::execute`] directly.
    ///
    /// # Errors
    /// Returns an error on out-of-bounds accesses, unbound variables or
    /// non-evaluable loop bounds. Lowering errors are reported before any
    /// array is mutated.
    pub fn run(&mut self, program: &Program, data: &mut ProgramData) -> Result<()> {
        let compiled = CompiledProgram::lower(program)?;
        self.executed_statements += compiled.execute(data)?;
        Ok(())
    }
}

/// Evaluation bindings type used by the reference interpreter.
pub(crate) type Bindings = BTreeMap<Var, i64>;

/// Convenience: runs a program on seeded data and returns the data.
///
/// # Errors
/// Propagates interpreter errors.
pub fn run_seeded(program: &Program) -> Result<ProgramData> {
    let mut data = ProgramData::seeded(program)?;
    Interpreter::new().run(program, &mut data)?;
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::nest::{BlasCall, BlasKind, Computation, Node};
    use loop_ir::parser::parse_program;
    use loop_ir::prelude::*;

    #[test]
    fn executes_a_simple_copy() {
        let p = parse_program(
            "program copy { param N = 8; array A[N]; array B[N];
               for i in 0..N { B[i] = A[i] * 2.0; } }",
        )
        .unwrap();
        let mut data =
            ProgramData::new_with(&p, |name, i| if name == "A" { i as f64 } else { 0.0 }).unwrap();
        Interpreter::new().run(&p, &mut data).unwrap();
        assert_eq!(
            data.array("B").unwrap(),
            &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]
        );
    }

    #[test]
    fn gemm_matches_reference_computation() {
        let p = parse_program(
            "program gemm { param NI = 5; param NJ = 4; param NK = 3;
               scalar alpha = 2.0; scalar beta = 0.5;
               array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
               for i in 0..NI { for j in 0..NJ {
                 C[i][j] = C[i][j] * beta;
                 for k in 0..NK { C[i][j] += alpha * A[i][k] * B[k][j]; }
               } } }",
        )
        .unwrap();
        let mut data = ProgramData::seeded(&p).unwrap();
        let a0 = data.array("A").unwrap().to_vec();
        let b0 = data.array("B").unwrap().to_vec();
        let c0 = data.array("C").unwrap().to_vec();
        Interpreter::new().run(&p, &mut data).unwrap();
        // reference
        let (ni, nj, nk) = (5usize, 4usize, 3usize);
        let mut c_ref = c0.clone();
        for i in 0..ni {
            for j in 0..nj {
                let mut acc = c0[i * nj + j] * 0.5;
                for k in 0..nk {
                    acc += 2.0 * a0[i * nk + k] * b0[k * nj + j];
                }
                c_ref[i * nj + j] = acc;
            }
        }
        let c = data.array("C").unwrap();
        for (x, y) in c.iter().zip(&c_ref) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn reduction_and_select_semantics() {
        let s = Computation::reduction(
            "S0",
            ArrayRef::new("acc", vec![cst(0)]),
            BinOp::Max,
            ScalarExpr::select(
                load("A", vec![var("i")]),
                CmpOp::Gt,
                fconst(0.0),
                load("A", vec![var("i")]),
                fconst(0.0),
            ),
        );
        let p = Program::builder("maxpos")
            .param("N", 6)
            .param("ONE", 1)
            .array("A", &["N"])
            .array("acc", &["ONE"])
            .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(s)]))
            .build()
            .unwrap();
        let mut data = ProgramData::new_with(&p, |name, i| match name {
            "A" => [-3.0, 2.0, -1.0, 5.0, 4.0, -9.0][i],
            _ => f64::NEG_INFINITY,
        })
        .unwrap();
        Interpreter::new().run(&p, &mut data).unwrap();
        assert_eq!(data.array("acc").unwrap()[0], 5.0);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let p = parse_program(
            "program oob { param N = 4; array A[N];
               for i in 0..N { A[i + 1] = 1.0; } }",
        )
        .unwrap();
        let mut data = ProgramData::zeroed(&p).unwrap();
        let err = Interpreter::new().run(&p, &mut data).unwrap_err();
        assert!(matches!(err, MachineError::OutOfBounds { .. }));
    }

    #[test]
    fn executed_statement_count() {
        let p = parse_program(
            "program count { param N = 3; param M = 4; array A[N][M];
               for i in 0..N { for j in 0..M { A[i][j] = 1.0; } } }",
        )
        .unwrap();
        let mut interp = Interpreter::new();
        let mut data = ProgramData::zeroed(&p).unwrap();
        interp.run(&p, &mut data).unwrap();
        assert_eq!(interp.executed_statements, 12);
    }

    #[test]
    fn strided_loops_and_symbolic_bounds() {
        let p = parse_program(
            "program strided { param N = 10; array A[N];
               for i in 0..N step 3 { A[i] = 7.0; } }",
        )
        .unwrap();
        let mut data = ProgramData::zeroed(&p).unwrap();
        Interpreter::new().run(&p, &mut data).unwrap();
        let a = data.array("A").unwrap();
        for (i, v) in a.iter().enumerate() {
            let expected = if i % 3 == 0 { 7.0 } else { 0.0 };
            assert_eq!(*v, expected, "element {i}");
        }
    }

    #[test]
    fn blas_call_node_executes() {
        let call = BlasCall {
            kind: BlasKind::Gemm,
            output: Var::new("C"),
            inputs: vec![Var::new("A"), Var::new("B")],
            dims: vec![var("N"), var("N"), var("N")],
            alpha: fconst(1.0),
            beta: fconst(0.0),
        };
        let p = Program::builder("blas")
            .param("N", 4)
            .array("A", &["N", "N"])
            .array("B", &["N", "N"])
            .array("C", &["N", "N"])
            .node(Node::Call(call))
            .build()
            .unwrap();
        let mut data = ProgramData::new_with(&p, |name, i| match name {
            "A" => (i % 4 == i / 4) as u8 as f64, // identity
            "B" => i as f64,
            _ => -1.0,
        })
        .unwrap();
        Interpreter::new().run(&p, &mut data).unwrap();
        let c = data.array("C").unwrap();
        let b: Vec<f64> = (0..16).map(|i| i as f64).collect();
        assert_eq!(c, b.as_slice());
    }

    #[test]
    fn seeded_data_is_deterministic() {
        let p =
            parse_program("program d { param N = 4; array A[N]; for i in 0..N { A[i] = A[i]; } }")
                .unwrap();
        let d1 = ProgramData::seeded(&p).unwrap();
        let d2 = ProgramData::seeded(&p).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(d1.max_abs_diff(&d2, "A"), Some(0.0));
        assert_eq!(d1.dims("A"), Some(&[4_i64][..]));
    }
}
