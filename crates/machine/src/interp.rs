//! A reference interpreter for loop-nest programs.
//!
//! The interpreter executes programs over concrete `f64` arrays. It is the
//! ground truth used by the test suite to check that transformations —
//! fission, interchange, tiling, fusion, idiom replacement — preserve
//! semantics, exactly the property normalization must have.

use std::collections::BTreeMap;

use loop_ir::array::ArrayRef;
use loop_ir::expr::Var;
use loop_ir::nest::{BlasCall, BlasKind, Node};
use loop_ir::program::Program;
use loop_ir::scalar::ScalarExpr;

use crate::blas;
use crate::error::{MachineError, Result};

/// Concrete storage for every array of a program, laid out row-major.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgramData {
    arrays: BTreeMap<Var, ArrayStorage>,
}

#[derive(Debug, Clone, PartialEq)]
struct ArrayStorage {
    dims: Vec<i64>,
    strides: Vec<i64>,
    data: Vec<f64>,
}

impl ProgramData {
    /// Allocates storage for every array of the program, initializing every
    /// element with `init(array_name, flat_index)`.
    ///
    /// # Errors
    /// Returns an error if an array extent cannot be evaluated under the
    /// program's parameters.
    pub fn new_with(
        program: &Program,
        mut init: impl FnMut(&str, usize) -> f64,
    ) -> Result<ProgramData> {
        let mut arrays = BTreeMap::new();
        for (name, array) in &program.arrays {
            let dims = array
                .concrete_dims(&program.params)
                .ok_or_else(|| MachineError::UnboundSize(name.to_string()))?;
            if dims.iter().any(|d| *d < 0) {
                return Err(MachineError::UnboundSize(name.to_string()));
            }
            let strides = array
                .strides(&program.params)
                .ok_or_else(|| MachineError::UnboundSize(name.to_string()))?;
            let len: i64 = dims.iter().product();
            let data = (0..len as usize).map(|i| init(name.as_str(), i)).collect();
            arrays.insert(
                name.clone(),
                ArrayStorage {
                    dims,
                    strides,
                    data,
                },
            );
        }
        Ok(ProgramData { arrays })
    }

    /// Allocates zero-initialized storage.
    pub fn zeroed(program: &Program) -> Result<ProgramData> {
        ProgramData::new_with(program, |_, _| 0.0)
    }

    /// Allocates storage with a deterministic, array-dependent pattern, the
    /// initialization used by the benchmark suite (a stand-in for the
    /// PolyBench init kernels).
    pub fn seeded(program: &Program) -> Result<ProgramData> {
        ProgramData::new_with(program, |name, i| {
            let h = name
                .bytes()
                .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
            let x = (h.wrapping_add(i as u64).wrapping_mul(2654435761)) % 1000;
            (x as f64) / 1000.0 + 0.01
        })
    }

    /// Returns a flat view of an array's contents.
    pub fn array(&self, name: &str) -> Option<&[f64]> {
        self.arrays.get(&Var::new(name)).map(|a| a.data.as_slice())
    }

    /// Returns a mutable flat view of an array's contents.
    pub fn array_mut(&mut self, name: &str) -> Option<&mut [f64]> {
        self.arrays
            .get_mut(&Var::new(name))
            .map(|a| a.data.as_mut_slice())
    }

    /// The concrete dimensions of an array.
    pub fn dims(&self, name: &str) -> Option<&[i64]> {
        self.arrays.get(&Var::new(name)).map(|a| a.dims.as_slice())
    }

    /// Maximum absolute difference between the same array in two data sets,
    /// used by equivalence tests.
    pub fn max_abs_diff(&self, other: &ProgramData, name: &str) -> Option<f64> {
        let a = self.array(name)?;
        let b = other.array(name)?;
        if a.len() != b.len() {
            return None;
        }
        Some(
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        )
    }

    fn flat_index(
        &self,
        array_ref: &ArrayRef,
        bindings: &BTreeMap<Var, i64>,
    ) -> Result<(Var, usize)> {
        let storage = self
            .arrays
            .get(&array_ref.array)
            .ok_or_else(|| MachineError::UnknownArray(array_ref.array.to_string()))?;
        if storage.dims.len() != array_ref.indices.len() {
            return Err(MachineError::OutOfBounds {
                array: array_ref.array.to_string(),
                index: -1,
            });
        }
        let mut flat: i64 = 0;
        for ((idx_expr, dim), stride) in array_ref
            .indices
            .iter()
            .zip(&storage.dims)
            .zip(&storage.strides)
        {
            let idx = idx_expr
                .eval(bindings)
                .ok_or_else(|| MachineError::UnboundVariable(idx_expr.to_string()))?;
            if idx < 0 || idx >= *dim {
                return Err(MachineError::OutOfBounds {
                    array: array_ref.array.to_string(),
                    index: idx,
                });
            }
            flat += idx * stride;
        }
        Ok((array_ref.array.clone(), flat as usize))
    }

    fn load(&self, array_ref: &ArrayRef, bindings: &BTreeMap<Var, i64>) -> Result<f64> {
        let (name, flat) = self.flat_index(array_ref, bindings)?;
        Ok(self.arrays[&name].data[flat])
    }

    fn store(
        &mut self,
        array_ref: &ArrayRef,
        bindings: &BTreeMap<Var, i64>,
        value: f64,
    ) -> Result<()> {
        let (name, flat) = self.flat_index(array_ref, bindings)?;
        self.arrays.get_mut(&name).expect("checked").data[flat] = value;
        Ok(())
    }
}

/// The interpreter: executes a program over a [`ProgramData`] store.
#[derive(Debug, Clone, Default)]
pub struct Interpreter {
    /// Counts of executed computation instances, for test assertions.
    pub executed_statements: u64,
}

impl Interpreter {
    /// Creates an interpreter.
    pub fn new() -> Self {
        Interpreter::default()
    }

    /// Executes the program, mutating `data` in place.
    ///
    /// # Errors
    /// Returns an error on out-of-bounds accesses, unbound variables or
    /// non-evaluable loop bounds.
    pub fn run(&mut self, program: &Program, data: &mut ProgramData) -> Result<()> {
        let mut bindings: BTreeMap<Var, i64> = program.params.clone();
        for node in &program.body {
            self.run_node(program, node, &mut bindings, data)?;
        }
        Ok(())
    }

    fn run_node(
        &mut self,
        program: &Program,
        node: &Node,
        bindings: &mut BTreeMap<Var, i64>,
        data: &mut ProgramData,
    ) -> Result<()> {
        match node {
            Node::Loop(l) => {
                let lower = l
                    .lower
                    .eval(bindings)
                    .ok_or_else(|| MachineError::UnboundVariable(l.lower.to_string()))?;
                let upper = l
                    .upper
                    .eval(bindings)
                    .ok_or_else(|| MachineError::UnboundVariable(l.upper.to_string()))?;
                if l.step <= 0 {
                    return Err(MachineError::InvalidLoop(l.iter.to_string()));
                }
                let previous = bindings.get(&l.iter).copied();
                let mut v = lower;
                while v < upper {
                    bindings.insert(l.iter.clone(), v);
                    for child in &l.body {
                        self.run_node(program, child, bindings, data)?;
                    }
                    v += l.step;
                }
                match previous {
                    Some(p) => {
                        bindings.insert(l.iter.clone(), p);
                    }
                    None => {
                        bindings.remove(&l.iter);
                    }
                }
                Ok(())
            }
            Node::Computation(c) => {
                self.executed_statements += 1;
                let value = eval_scalar(&c.value, program, bindings, data)?;
                let result = match c.reduction {
                    Some(op) => {
                        let current = data.load(&c.target, bindings)?;
                        op.apply(current, value)
                    }
                    None => value,
                };
                data.store(&c.target, bindings, result)
            }
            Node::Call(call) => self.run_blas(program, call, bindings, data),
        }
    }

    fn run_blas(
        &mut self,
        program: &Program,
        call: &BlasCall,
        bindings: &BTreeMap<Var, i64>,
        data: &mut ProgramData,
    ) -> Result<()> {
        let dims: Option<Vec<i64>> = call.dims.iter().map(|d| d.eval(bindings)).collect();
        let dims = dims.ok_or_else(|| MachineError::UnboundVariable("blas dims".to_string()))?;
        let alpha = eval_scalar(&call.alpha, program, bindings, data)?;
        let beta = eval_scalar(&call.beta, program, bindings, data)?;
        let input = |i: usize| -> Result<Vec<f64>> {
            let name = call
                .inputs
                .get(i)
                .ok_or_else(|| MachineError::UnknownArray(format!("blas input {i}")))?;
            data.array(name.as_str())
                .map(|s| s.to_vec())
                .ok_or_else(|| MachineError::UnknownArray(name.to_string()))
        };
        match call.kind {
            BlasKind::Gemm => {
                let (m, n, k) = (dims[0] as usize, dims[1] as usize, dims[2] as usize);
                let a = input(0)?;
                let b = input(1)?;
                let c = data
                    .array_mut(call.output.as_str())
                    .ok_or_else(|| MachineError::UnknownArray(call.output.to_string()))?;
                blas::dgemm(m, n, k, alpha, &a, &b, beta, c);
            }
            BlasKind::Syrk => {
                let (n, k) = (dims[0] as usize, dims[1] as usize);
                let a = input(0)?;
                let c = data
                    .array_mut(call.output.as_str())
                    .ok_or_else(|| MachineError::UnknownArray(call.output.to_string()))?;
                blas::dsyrk(n, k, alpha, &a, beta, c);
            }
            BlasKind::Syr2k => {
                let (n, k) = (dims[0] as usize, dims[1] as usize);
                let a = input(0)?;
                let b = input(1)?;
                let c = data
                    .array_mut(call.output.as_str())
                    .ok_or_else(|| MachineError::UnknownArray(call.output.to_string()))?;
                blas::dsyr2k(n, k, alpha, &a, &b, beta, c);
            }
            BlasKind::Gemv => {
                let (m, n) = (dims[0] as usize, dims[1] as usize);
                let a = input(0)?;
                let x = input(1)?;
                let y = data
                    .array_mut(call.output.as_str())
                    .ok_or_else(|| MachineError::UnknownArray(call.output.to_string()))?;
                blas::dgemv(m, n, alpha, &a, &x, beta, y);
            }
        }
        Ok(())
    }
}

fn eval_scalar(
    expr: &ScalarExpr,
    program: &Program,
    bindings: &BTreeMap<Var, i64>,
    data: &ProgramData,
) -> Result<f64> {
    match expr {
        ScalarExpr::Load(r) => data.load(r, bindings),
        ScalarExpr::Const(c) => Ok(*c),
        ScalarExpr::Param(p) => program
            .scalar_params
            .get(p)
            .copied()
            .ok_or_else(|| MachineError::UnboundVariable(p.to_string())),
        ScalarExpr::Index(e) => e
            .eval(bindings)
            .map(|v| v as f64)
            .ok_or_else(|| MachineError::UnboundVariable(e.to_string())),
        ScalarExpr::Unary(op, a) => Ok(op.apply(eval_scalar(a, program, bindings, data)?)),
        ScalarExpr::Binary(op, a, b) => Ok(op.apply(
            eval_scalar(a, program, bindings, data)?,
            eval_scalar(b, program, bindings, data)?,
        )),
        ScalarExpr::Select {
            lhs,
            cmp,
            rhs,
            then,
            otherwise,
        } => {
            let l = eval_scalar(lhs, program, bindings, data)?;
            let r = eval_scalar(rhs, program, bindings, data)?;
            if cmp.apply(l, r) {
                eval_scalar(then, program, bindings, data)
            } else {
                eval_scalar(otherwise, program, bindings, data)
            }
        }
    }
}

/// Convenience: runs a program on seeded data and returns the data.
///
/// # Errors
/// Propagates interpreter errors.
pub fn run_seeded(program: &Program) -> Result<ProgramData> {
    let mut data = ProgramData::seeded(program)?;
    Interpreter::new().run(program, &mut data)?;
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;
    use loop_ir::prelude::*;

    #[test]
    fn executes_a_simple_copy() {
        let p = parse_program(
            "program copy { param N = 8; array A[N]; array B[N];
               for i in 0..N { B[i] = A[i] * 2.0; } }",
        )
        .unwrap();
        let mut data =
            ProgramData::new_with(&p, |name, i| if name == "A" { i as f64 } else { 0.0 }).unwrap();
        Interpreter::new().run(&p, &mut data).unwrap();
        assert_eq!(
            data.array("B").unwrap(),
            &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]
        );
    }

    #[test]
    fn gemm_matches_reference_computation() {
        let p = parse_program(
            "program gemm { param NI = 5; param NJ = 4; param NK = 3;
               scalar alpha = 2.0; scalar beta = 0.5;
               array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
               for i in 0..NI { for j in 0..NJ {
                 C[i][j] = C[i][j] * beta;
                 for k in 0..NK { C[i][j] += alpha * A[i][k] * B[k][j]; }
               } } }",
        )
        .unwrap();
        let mut data = ProgramData::seeded(&p).unwrap();
        let a0 = data.array("A").unwrap().to_vec();
        let b0 = data.array("B").unwrap().to_vec();
        let c0 = data.array("C").unwrap().to_vec();
        Interpreter::new().run(&p, &mut data).unwrap();
        // reference
        let (ni, nj, nk) = (5usize, 4usize, 3usize);
        let mut c_ref = c0.clone();
        for i in 0..ni {
            for j in 0..nj {
                let mut acc = c0[i * nj + j] * 0.5;
                for k in 0..nk {
                    acc += 2.0 * a0[i * nk + k] * b0[k * nj + j];
                }
                c_ref[i * nj + j] = acc;
            }
        }
        let c = data.array("C").unwrap();
        for (x, y) in c.iter().zip(&c_ref) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn reduction_and_select_semantics() {
        let s = Computation::reduction(
            "S0",
            ArrayRef::new("acc", vec![cst(0)]),
            BinOp::Max,
            ScalarExpr::select(
                load("A", vec![var("i")]),
                CmpOp::Gt,
                fconst(0.0),
                load("A", vec![var("i")]),
                fconst(0.0),
            ),
        );
        let p = Program::builder("maxpos")
            .param("N", 6)
            .param("ONE", 1)
            .array("A", &["N"])
            .array("acc", &["ONE"])
            .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(s)]))
            .build()
            .unwrap();
        let mut data = ProgramData::new_with(&p, |name, i| match name {
            "A" => [-3.0, 2.0, -1.0, 5.0, 4.0, -9.0][i],
            _ => f64::NEG_INFINITY,
        })
        .unwrap();
        Interpreter::new().run(&p, &mut data).unwrap();
        assert_eq!(data.array("acc").unwrap()[0], 5.0);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let p = parse_program(
            "program oob { param N = 4; array A[N];
               for i in 0..N { A[i + 1] = 1.0; } }",
        )
        .unwrap();
        let mut data = ProgramData::zeroed(&p).unwrap();
        let err = Interpreter::new().run(&p, &mut data).unwrap_err();
        assert!(matches!(err, MachineError::OutOfBounds { .. }));
    }

    #[test]
    fn executed_statement_count() {
        let p = parse_program(
            "program count { param N = 3; param M = 4; array A[N][M];
               for i in 0..N { for j in 0..M { A[i][j] = 1.0; } } }",
        )
        .unwrap();
        let mut interp = Interpreter::new();
        let mut data = ProgramData::zeroed(&p).unwrap();
        interp.run(&p, &mut data).unwrap();
        assert_eq!(interp.executed_statements, 12);
    }

    #[test]
    fn strided_loops_and_symbolic_bounds() {
        let p = parse_program(
            "program strided { param N = 10; array A[N];
               for i in 0..N step 3 { A[i] = 7.0; } }",
        )
        .unwrap();
        let mut data = ProgramData::zeroed(&p).unwrap();
        Interpreter::new().run(&p, &mut data).unwrap();
        let a = data.array("A").unwrap();
        for (i, v) in a.iter().enumerate() {
            let expected = if i % 3 == 0 { 7.0 } else { 0.0 };
            assert_eq!(*v, expected, "element {i}");
        }
    }

    #[test]
    fn blas_call_node_executes() {
        let call = BlasCall {
            kind: BlasKind::Gemm,
            output: Var::new("C"),
            inputs: vec![Var::new("A"), Var::new("B")],
            dims: vec![var("N"), var("N"), var("N")],
            alpha: fconst(1.0),
            beta: fconst(0.0),
        };
        let p = Program::builder("blas")
            .param("N", 4)
            .array("A", &["N", "N"])
            .array("B", &["N", "N"])
            .array("C", &["N", "N"])
            .node(Node::Call(call))
            .build()
            .unwrap();
        let mut data = ProgramData::new_with(&p, |name, i| match name {
            "A" => (i % 4 == i / 4) as u8 as f64, // identity
            "B" => i as f64,
            _ => -1.0,
        })
        .unwrap();
        Interpreter::new().run(&p, &mut data).unwrap();
        let c = data.array("C").unwrap();
        let b: Vec<f64> = (0..16).map(|i| i as f64).collect();
        assert_eq!(c, b.as_slice());
    }

    #[test]
    fn seeded_data_is_deterministic() {
        let p =
            parse_program("program d { param N = 4; array A[N]; for i in 0..N { A[i] = A[i]; } }")
                .unwrap();
        let d1 = ProgramData::seeded(&p).unwrap();
        let d2 = ProgramData::seeded(&p).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(d1.max_abs_diff(&d2, "A"), Some(0.0));
        assert_eq!(d1.dims("A"), Some(&[4_i64][..]));
    }
}
