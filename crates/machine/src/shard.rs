//! Block-sharded parallel cache simulation.
//!
//! The CLOUDSC proxy iterates `NBLOCKS` independent blocks in its outermost
//! loop; at the paper's full `NBLOCKS = 4096` one thread walking the whole
//! trace (~1.6B accesses) is the bottleneck of every trace-backed figure.
//! This module cuts a compiled program's trace into shards, streams each
//! shard through its *own* [`CacheHierarchy`] replica on a worker pool, and
//! merges the per-shard counters with an order-independent reduction.
//!
//! # Shard granularity
//!
//! [`ShardPlan::for_program`] picks the cut:
//!
//! * **Blocks** — when the program body is exactly one top-level loop with
//!   nested structure (the CLOUDSC `IBL` block loop after lowering), each
//!   shard is one iteration of that loop, streamed directly via a
//!   shard-ranged walk — no shard ever touches another shard's trace, and
//!   the whole fan-out walks the trace exactly once.
//! * **Run groups** — any other shape falls back to cutting the stream of
//!   *emission units* (lockstep run groups and bare accesses) into at most
//!   [`RUN_GROUP_SHARDS`] contiguous windows. Each shard replays the walk
//!   and simulates only its window, so the fallback trades a bounded number
//!   of cheap re-walks for not needing any structural precondition.
//!
//! # Determinism contract
//!
//! The plan is a pure function of the compiled program — never of the
//! worker count — and each shard is simulated on a cold replica, so the
//! merged [`ShardedCacheStats`] are **bit-identical at any worker count**:
//! `simulate_cache_sharded` with 8 workers equals the same call with 1
//! worker, counter for counter. A plan with a single all-covering shard
//! degenerates to exactly [`simulate_cache`](crate::simulate_cache).
//!
//! Cold replicas mean shard boundaries reset cache state: relative to one
//! monolithic simulation, a multi-shard run charges each shard its own
//! compulsory misses instead of inheriting a warm cache. For block-disjoint
//! traces like CLOUDSC (each block touches its own array slabs) the stale
//! lines a monolithic run would evict occupy ways exactly like the empty
//! ways of a cold replica, so hits, misses and loads coincide with the
//! monolithic counters; only `evicts` is defined per shard.
//!
//! The worker pool mirrors the clamping and panic containment of `daisy`'s
//! `parallel_map_with` (which lives above this crate and cannot be reused
//! directly): explicit worker requests clamp to the machine's available
//! parallelism and the shard count, a panicking shard is retried
//! sequentially on the caller, and results are merged by shard index.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use loop_ir::program::Program;

use crate::cache::{CacheHierarchy, CacheStats};
use crate::config::MachineConfig;
use crate::error::Result;
use crate::exec::CompiledProgram;
use crate::trace::{AccessSink, CacheSink, PerAccessCacheSink, StrideRun, TraceEntry};

/// Maximum shard count of the run-group fallback. Each fallback shard
/// replays the full trace walk (simulating only its window), so the cut
/// count bounds the re-walk overhead; it is a constant — not derived from
/// the worker count — because the shard plan must never depend on how many
/// workers later execute it (see the module-level determinism contract).
pub const RUN_GROUP_SHARDS: usize = 16;

/// At which granularity a [`ShardPlan`] cuts the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardGranularity {
    /// Iteration sub-ranges of the single top-level (block) loop.
    Blocks,
    /// Contiguous windows of trace emission units (lockstep run groups and
    /// bare accesses), the fallback for non-blocked programs.
    RunGroups,
}

/// A deterministic cut of a compiled program's trace into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    granularity: ShardGranularity,
    /// Half-open `[lo, hi)` ranges in trip-index space (`Blocks`) or
    /// emission-unit space (`RunGroups`); sorted, non-overlapping.
    cuts: Vec<(u64, u64)>,
}

impl ShardPlan {
    /// Builds the canonical plan for a compiled program: one shard per
    /// block when the program is block-shardable, at most
    /// [`RUN_GROUP_SHARDS`] near-equal emission-unit windows otherwise.
    /// The result depends only on the program, never on the worker count.
    ///
    /// # Errors
    /// Bound or subscript evaluation errors from the unit-counting walk of
    /// the fallback path.
    pub fn for_program(compiled: &CompiledProgram) -> Result<ShardPlan> {
        if let Some(trips) = compiled.block_trips() {
            return Ok(ShardPlan {
                granularity: ShardGranularity::Blocks,
                cuts: (0..trips).map(|t| (t, t + 1)).collect(),
            });
        }
        let mut counter = UnitCounter { units: 0 };
        compiled.stream(&mut counter)?;
        Ok(ShardPlan {
            granularity: ShardGranularity::RunGroups,
            cuts: partition(counter.units, RUN_GROUP_SHARDS),
        })
    }

    /// The degenerate plan with one shard covering the whole trace — by
    /// construction bit-identical to the monolithic
    /// [`simulate_cache`](crate::simulate_cache).
    ///
    /// # Errors
    /// As [`ShardPlan::for_program`].
    pub fn single(compiled: &CompiledProgram) -> Result<ShardPlan> {
        let plan = ShardPlan::for_program(compiled)?;
        let total = plan.cuts.last().map_or(0, |&(_, hi)| hi);
        Ok(ShardPlan {
            granularity: plan.granularity,
            cuts: if total == 0 {
                Vec::new()
            } else {
                vec![(0, total)]
            },
        })
    }

    /// A block-granularity plan with explicit trip-index cuts, for tests
    /// exercising ragged and irregular shard shapes. Ranges past the block
    /// loop's trip count clamp to it (streaming nothing beyond the end).
    pub fn blocks(cuts: Vec<(u64, u64)>) -> ShardPlan {
        ShardPlan {
            granularity: ShardGranularity::Blocks,
            cuts,
        }
    }

    /// A run-group-granularity plan with explicit emission-unit windows.
    /// Units outside `[0, total units)` select nothing.
    pub fn run_groups(cuts: Vec<(u64, u64)>) -> ShardPlan {
        ShardPlan {
            granularity: ShardGranularity::RunGroups,
            cuts,
        }
    }

    /// The granularity this plan cuts at.
    pub fn granularity(&self) -> ShardGranularity {
        self.granularity
    }

    /// The shard ranges, half-open, in plan order.
    pub fn shards(&self) -> &[(u64, u64)] {
        &self.cuts
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// True when the plan has no shards (a zero-trip block loop or an
    /// empty trace).
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    /// A stable 64-bit digest of the plan (granularity and every cut) —
    /// the shard-aware component of the cost model's simulation memo keys.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(match self.granularity {
            ShardGranularity::Blocks => 1,
            ShardGranularity::RunGroups => 2,
        });
        for &(lo, hi) in &self.cuts {
            mix(lo);
            mix(hi);
        }
        h
    }
}

/// Splits `[0, total)` into at most `shards` near-equal contiguous ranges,
/// earlier ranges taking the remainder (the last shard may be ragged).
fn partition(total: u64, shards: usize) -> Vec<(u64, u64)> {
    if total == 0 {
        return Vec::new();
    }
    let shards = (shards as u64).clamp(1, total);
    let (base, rem) = (total / shards, total % shards);
    let mut cuts = Vec::with_capacity(shards as usize);
    let mut lo = 0;
    for s in 0..shards {
        let hi = lo + base + u64::from(s < rem);
        cuts.push((lo, hi));
        lo = hi;
    }
    cuts
}

/// The merged counters of one sharded simulation. `PartialEq` compares
/// every counter, so asserting two results equal *is* the bit-identity
/// check of the determinism contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedCacheStats {
    accesses: u64,
    probes: u64,
    l1: CacheStats,
    l2: CacheStats,
    shards: usize,
    granularity: ShardGranularity,
}

impl ShardedCacheStats {
    /// Total accesses simulated across all shards.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total cache lookups across all shards and both levels.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Merged L1 counters.
    pub fn l1(&self) -> CacheStats {
        self.l1
    }

    /// Merged L2 counters.
    pub fn l2(&self) -> CacheStats {
        self.l2
    }

    /// Number of shards the plan cut the trace into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The granularity the trace was cut at.
    pub fn granularity(&self) -> ShardGranularity {
        self.granularity
    }
}

/// Simulates a program's cache behavior sharded across `workers` worker
/// threads (`0` lets the machine decide) under the canonical
/// [`ShardPlan::for_program`] plan. Counters are bit-identical at any
/// worker count; see the module docs for the exact contract.
///
/// # Errors
/// Lowering and trace-generation errors.
pub fn simulate_cache_sharded(
    program: &Program,
    machine: &MachineConfig,
    workers: usize,
) -> Result<ShardedCacheStats> {
    let compiled = CompiledProgram::lower(program)?;
    let plan = ShardPlan::for_program(&compiled)?;
    simulate_cache_sharded_with_plan(&compiled, &plan, machine, workers)
}

/// [`simulate_cache_sharded`] with an explicit plan: streams each shard
/// through its own cold [`CacheHierarchy`] replica on the worker pool and
/// merges the counters by shard index (field-wise sums, so any worker
/// schedule produces bit-identical totals).
///
/// # Errors
/// Trace-generation errors; the first failing shard (in plan order) wins.
pub fn simulate_cache_sharded_with_plan(
    compiled: &CompiledProgram,
    plan: &ShardPlan,
    machine: &MachineConfig,
    workers: usize,
) -> Result<ShardedCacheStats> {
    let _span = telemetry::span("simulate_cache_sharded");
    let shard_results = parallel_map_shards(workers, plan.shards(), |&(lo, hi)| {
        let _shard_span = telemetry::span("simulate_cache_sharded.shard");
        let mut cache = CacheHierarchy::from_machine(machine);
        simulate_shard(compiled, plan.granularity(), lo, hi, &mut cache)?;
        Ok::<_, crate::error::MachineError>((
            cache.accesses(),
            cache.probes(),
            cache.l1(),
            cache.l2(),
        ))
    });
    let mut merged = ShardedCacheStats {
        accesses: 0,
        probes: 0,
        l1: CacheStats::default(),
        l2: CacheStats::default(),
        shards: plan.len(),
        granularity: plan.granularity(),
    };
    for result in shard_results {
        let (accesses, probes, l1, l2) = result?;
        merged.accesses += accesses;
        merged.probes += probes;
        merged.l1.merge(&l1);
        merged.l2.merge(&l2);
    }
    record_sharded_counters(&merged);
    Ok(merged)
}

/// The sequential per-access oracle of the differential suite: the same
/// shard decomposition, but every shard's stream expanded through the
/// retained per-access pipeline
/// ([`simulate_cache_per_access`](crate::simulate_cache_per_access)'s sink)
/// instead of the run-group fast path. Accesses and per-level counters are
/// bit-identical to [`simulate_cache_sharded_with_plan`] at any worker
/// count — that equality is exactly the run-compression contract, shard by
/// shard. (`probes` is a property of the pipeline, not of the contract:
/// run compression probes once per distinct line, this oracle once per
/// access.)
///
/// # Errors
/// Trace-generation errors.
pub fn simulate_cache_sharded_per_access(
    compiled: &CompiledProgram,
    plan: &ShardPlan,
    machine: &MachineConfig,
) -> Result<ShardedCacheStats> {
    let mut merged = ShardedCacheStats {
        accesses: 0,
        probes: 0,
        l1: CacheStats::default(),
        l2: CacheStats::default(),
        shards: plan.len(),
        granularity: plan.granularity(),
    };
    for &(lo, hi) in plan.shards() {
        let mut cache = CacheHierarchy::from_machine(machine);
        match plan.granularity() {
            ShardGranularity::Blocks => {
                let mut sink = PerAccessCacheSink { cache: &mut cache };
                compiled.stream_block_range(lo, hi, &mut sink)?;
            }
            ShardGranularity::RunGroups => {
                let mut sink = UnitWindow {
                    inner: PerAccessCacheSink { cache: &mut cache },
                    next: 0,
                    lo,
                    hi,
                };
                compiled.stream(&mut sink)?;
            }
        }
        merged.accesses += cache.accesses();
        merged.probes += cache.probes();
        merged.l1.merge(&cache.l1());
        merged.l2.merge(&cache.l2());
    }
    Ok(merged)
}

/// Streams one shard into `cache` through the run-compressed sink.
fn simulate_shard(
    compiled: &CompiledProgram,
    granularity: ShardGranularity,
    lo: u64,
    hi: u64,
    cache: &mut CacheHierarchy,
) -> Result<()> {
    match granularity {
        ShardGranularity::Blocks => {
            let mut sink = CacheSink { cache };
            compiled.stream_block_range(lo, hi, &mut sink)?;
        }
        ShardGranularity::RunGroups => {
            let mut sink = UnitWindow {
                inner: CacheSink { cache },
                next: 0,
                lo,
                hi,
            };
            compiled.stream(&mut sink)?;
        }
    }
    Ok(())
}

/// Publishes the counters of one finished sharded simulation, at the
/// simulation boundary only (the per-shard hot paths carry no telemetry
/// cost beyond one span each).
fn record_sharded_counters(stats: &ShardedCacheStats) {
    if !telemetry::enabled() {
        return;
    }
    telemetry::counter("machine.shard.simulations", 1);
    telemetry::counter("machine.shard.shards", stats.shards as u64);
    telemetry::counter("machine.shard.accesses", stats.accesses);
}

/// Counts trace emission units — each lockstep run group, standalone run
/// or bare access is one unit, the atom run-group granularity cuts at.
struct UnitCounter {
    units: u64,
}

impl AccessSink for UnitCounter {
    fn access(&mut self, _entry: TraceEntry) {
        self.units += 1;
    }

    fn run(&mut self, _start: u64, _stride: i64, _count: u64, _is_write: bool) {
        self.units += 1;
    }

    fn run_group(&mut self, _runs: &[StrideRun]) {
        self.units += 1;
    }
}

/// Forwards only the emission units with index in `[lo, hi)` to the inner
/// sink; everything else is counted and dropped. Whole units are never
/// split, so the windows of a run-group plan tile the trace exactly.
struct UnitWindow<S> {
    inner: S,
    next: u64,
    lo: u64,
    hi: u64,
}

impl<S> UnitWindow<S> {
    fn take(&mut self) -> bool {
        let unit = self.next;
        self.next += 1;
        self.lo <= unit && unit < self.hi
    }
}

impl<S: AccessSink> AccessSink for UnitWindow<S> {
    fn access(&mut self, entry: TraceEntry) {
        if self.take() {
            self.inner.access(entry);
        }
    }

    fn run(&mut self, start: u64, stride: i64, count: u64, is_write: bool) {
        if self.take() {
            self.inner.run(start, stride, count, is_write);
        }
    }

    fn run_group(&mut self, runs: &[StrideRun]) {
        if self.take() {
            self.inner.run_group(runs);
        }
    }
}

/// The worker-thread count the shard pool actually uses for a request:
/// `0` means "the machine decides"; any explicit request is clamped to
/// [`std::thread::available_parallelism`] — oversubscribing cores only adds
/// spawn and scheduling overhead — and to the shard count. Mirrors the
/// scheduler-side clamp of `daisy`'s `parallel_map_with` (see
/// `BENCH_PR4.json` for the regression that motivated it).
pub fn effective_sim_workers(requested: usize, shards: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let requested = if requested == 0 {
        available
    } else {
        requested.min(available)
    };
    requested.min(shards)
}

/// Maps `f` over shards on scoped worker threads, preserving order —
/// `daisy::search::parallel_map_with`'s contract rebuilt below that crate:
/// a panic inside `f` is contained to the shard that raised it (the worker
/// keeps draining the queue) and the poisoned shard is retried sequentially
/// on the caller, where a deterministic panic re-raises with an intact
/// backtrace. Results are written back by shard index, so the output is
/// independent of the worker count for any pure `f`.
fn parallel_map_shards<T: Sync, R: Send>(
    workers: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let workers = effective_sim_workers(workers, items.len());
    if !items.is_empty() {
        telemetry::counter("machine.shard.jobs", items.len() as u64);
        telemetry::counter("machine.shard.pool_workers", workers.max(1) as u64);
    }
    if workers <= 1 {
        return items
            .iter()
            .map(|item| catch_unwind(AssertUnwindSafe(|| f(item))).unwrap_or_else(|_| f(item)))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            return out;
                        }
                        let attempt = catch_unwind(AssertUnwindSafe(|| f(&items[index])));
                        if let Ok(value) = attempt {
                            out.push((index, value));
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            // A worker body only exits by returning `out`; a join error
            // would mean a panic escaped catch_unwind — skip it and let
            // the sequential retry decide.
            let Ok(chunk) = handle.join() else { continue };
            // The worker-utilization histogram: how many shards each
            // worker ended up serving under work stealing.
            telemetry::histogram("machine.shard.worker_items", chunk.len() as u64);
            for (index, value) in chunk {
                results[index] = Some(value);
            }
        }
    });
    items
        .iter()
        .zip(results)
        .map(|(item, slot)| match slot {
            Some(value) => value,
            None => f(item),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{simulate_cache, simulate_cache_per_access};
    use loop_ir::parser::parse_program;

    /// `N = 16` keeps each block's 128-byte slab line-aligned, so blocks
    /// are line-disjoint (the CLOUDSC layout property the disjointness test
    /// relies on).
    fn blocked_program(nblocks: i64) -> Program {
        parse_program(&format!(
            "program blocked {{ param NB = {nblocks}; param N = 16;
               array A[NB * N]; array B[NB * N];
               for b in 0..NB {{
                 for i in 0..N {{ B[b * N + i] = A[b * N + i] * 2.0; }}
               }} }}"
        ))
        .expect("blocked program parses")
    }

    /// Equality on everything except `probes`: how often the simulator
    /// probed is a property of the pipeline (run compression probes once
    /// per distinct line, the per-access baseline once per access), not of
    /// the determinism contract, which covers the cache *counters*.
    fn assert_counters_eq(a: &ShardedCacheStats, b: &ShardedCacheStats) {
        assert_eq!(a.accesses(), b.accesses());
        assert_eq!(a.l1(), b.l1());
        assert_eq!(a.l2(), b.l2());
        assert_eq!(a.shards(), b.shards());
    }

    fn flat_program() -> Program {
        parse_program(
            "program flat { param N = 64; array A[N]; array B[N];
               for i in 0..N { B[i] = A[i] + 1.0; } }",
        )
        .expect("flat program parses")
    }

    fn multi_nest_program() -> Program {
        parse_program(
            "program multi { param N = 16; array A[N][N]; array C[N];
               for i in 0..N { C[i] = A[i][0]; }
               for i in 0..N { for j in 0..N { A[i][j] = C[i] * 2.0; } } }",
        )
        .expect("multi-nest program parses")
    }

    #[test]
    fn blocked_programs_shard_one_block_per_shard() {
        let compiled = CompiledProgram::lower(&blocked_program(7)).unwrap();
        let plan = ShardPlan::for_program(&compiled).unwrap();
        assert_eq!(plan.granularity(), ShardGranularity::Blocks);
        assert_eq!(plan.len(), 7);
        assert_eq!(plan.shards()[0], (0, 1));
        assert_eq!(plan.shards()[6], (6, 7));
    }

    #[test]
    fn flat_and_multi_nest_programs_fall_back_to_run_groups() {
        for program in [flat_program(), multi_nest_program()] {
            let compiled = CompiledProgram::lower(&program).unwrap();
            let plan = ShardPlan::for_program(&compiled).unwrap();
            assert_eq!(plan.granularity(), ShardGranularity::RunGroups);
            assert!(!plan.is_empty(), "{}: empty plan", program.name);
            assert!(plan.len() <= RUN_GROUP_SHARDS);
            // The windows tile the unit space.
            let mut expected = 0;
            for &(lo, hi) in plan.shards() {
                assert_eq!(lo, expected);
                assert!(hi > lo);
                expected = hi;
            }
        }
    }

    #[test]
    fn zero_trip_block_loops_yield_an_empty_plan_and_zero_stats() {
        let program = blocked_program(0);
        let compiled = CompiledProgram::lower(&program).unwrap();
        let plan = ShardPlan::for_program(&compiled).unwrap();
        assert_eq!(plan.granularity(), ShardGranularity::Blocks);
        assert!(plan.is_empty());
        let machine = MachineConfig::tiny_for_tests();
        let stats = simulate_cache_sharded(&program, &machine, 4).unwrap();
        assert_eq!(stats.accesses(), 0);
        assert_eq!(stats.l1(), CacheStats::default());
        assert_eq!(stats.l2(), CacheStats::default());
    }

    #[test]
    fn a_single_covering_shard_reproduces_the_monolithic_simulation() {
        let machine = MachineConfig::tiny_for_tests();
        for program in [blocked_program(5), flat_program(), multi_nest_program()] {
            let compiled = CompiledProgram::lower(&program).unwrap();
            let plan = ShardPlan::single(&compiled).unwrap();
            assert_eq!(plan.len(), 1, "{}", program.name);
            let sharded = simulate_cache_sharded_with_plan(&compiled, &plan, &machine, 1).unwrap();
            let mono = simulate_cache(&program, &machine).unwrap();
            assert_eq!(sharded.accesses(), mono.accesses(), "{}", program.name);
            assert_eq!(sharded.probes(), mono.probes(), "{}", program.name);
            assert_eq!(sharded.l1(), mono.l1(), "{}", program.name);
            assert_eq!(sharded.l2(), mono.l2(), "{}", program.name);
        }
    }

    #[test]
    fn counters_are_bit_identical_at_any_worker_count() {
        let machine = MachineConfig::tiny_for_tests();
        for program in [blocked_program(9), multi_nest_program()] {
            let baseline = simulate_cache_sharded(&program, &machine, 1).unwrap();
            for workers in [0usize, 2, 3, 8] {
                let stats = simulate_cache_sharded(&program, &machine, workers).unwrap();
                assert_eq!(stats, baseline, "{}: workers {workers}", program.name);
            }
        }
    }

    #[test]
    fn sharded_counters_match_the_per_access_oracle_on_ragged_cuts() {
        let machine = MachineConfig::tiny_for_tests();
        let program = blocked_program(10);
        let compiled = CompiledProgram::lower(&program).unwrap();
        // Ragged last shard (3+3+3+1), plus a range clamped past the end.
        let plan = ShardPlan::blocks(vec![(0, 3), (3, 6), (6, 9), (9, 12)]);
        let sharded = simulate_cache_sharded_with_plan(&compiled, &plan, &machine, 3).unwrap();
        let oracle = simulate_cache_sharded_per_access(&compiled, &plan, &machine).unwrap();
        assert_counters_eq(&sharded, &oracle);
        // All accesses are covered exactly once despite the clamped range.
        assert_eq!(
            sharded.accesses(),
            simulate_cache(&program, &machine).unwrap().accesses()
        );
    }

    #[test]
    fn block_disjoint_traces_keep_monolithic_hits_misses_and_loads() {
        // Each block touches its own slab of A and B, so stale lines from
        // earlier blocks behave exactly like a cold replica's empty ways:
        // hits/misses/loads match the monolithic run, only evicts are
        // defined per shard (see the module docs).
        let machine = MachineConfig::tiny_for_tests();
        let program = blocked_program(8);
        let sharded = simulate_cache_sharded(&program, &machine, 2).unwrap();
        let mono = simulate_cache(&program, &machine).unwrap();
        assert_eq!(sharded.accesses(), mono.accesses());
        for (sh, mo, level) in [
            (sharded.l1(), mono.l1(), "L1"),
            (sharded.l2(), mono.l2(), "L2"),
        ] {
            assert_eq!(sh.hits, mo.hits, "{level} hits");
            assert_eq!(sh.misses, mo.misses, "{level} misses");
            assert_eq!(sh.loads, mo.loads, "{level} loads");
        }
    }

    #[test]
    fn run_group_windows_agree_with_the_per_access_oracle() {
        let machine = MachineConfig::tiny_for_tests();
        let program = multi_nest_program();
        let compiled = CompiledProgram::lower(&program).unwrap();
        let plan = ShardPlan::for_program(&compiled).unwrap();
        let sharded = simulate_cache_sharded_with_plan(&compiled, &plan, &machine, 3).unwrap();
        let oracle = simulate_cache_sharded_per_access(&compiled, &plan, &machine).unwrap();
        assert_counters_eq(&sharded, &oracle);
        assert_eq!(
            sharded.accesses(),
            simulate_cache_per_access(&program, &machine)
                .unwrap()
                .accesses()
        );
    }

    #[test]
    fn effective_sim_workers_clamps_requests() {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(effective_sim_workers(0, 100), available.min(100));
        assert_eq!(effective_sim_workers(3, 2), 2.min(available));
        assert_eq!(effective_sim_workers(1, 100), 1);
        assert_eq!(effective_sim_workers(usize::MAX, 4), available.min(4));
        assert_eq!(effective_sim_workers(4, 0), 0);
    }

    #[test]
    fn plan_fingerprints_separate_granularity_and_cuts() {
        let a = ShardPlan::blocks(vec![(0, 4)]);
        let b = ShardPlan::run_groups(vec![(0, 4)]);
        let c = ShardPlan::blocks(vec![(0, 2), (2, 4)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(
            a.fingerprint(),
            ShardPlan::blocks(vec![(0, 4)]).fingerprint()
        );
    }

    #[test]
    fn worker_panics_are_contained_and_retried() {
        // One poisoned item must not take the fan-out down; the transient
        // panic heals on the sequential retry.
        let flaky = AtomicUsize::new(0);
        let items: Vec<usize> = (0..16).collect();
        let results = parallel_map_shards(4, &items, |&x| {
            if x == 7 && flaky.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            x * 2
        });
        assert_eq!(results, (0..16).map(|x| x * 2).collect::<Vec<_>>());
    }
}
