//! The compiled loop-nest execution engine.
//!
//! Both executions the evaluation relies on — the semantic reference run of
//! [`crate::interp`] and the cache-trace walk of [`crate::trace`] — used to
//! walk the program tree with per-iteration `BTreeMap` bindings and a
//! symbolic `Expr::eval` per subscript. This module replaces that duplicated
//! hot path with a single lowering, [`CompiledProgram::lower`], performed
//! once per program:
//!
//! * **Flat storage and slot frames.** Arrays resolve to dense indices into
//!   the [`ProgramData`] storage vector; loop iterators and size parameters
//!   resolve to slots of a flat `i64` frame. No map lookups survive into the
//!   execution loop.
//! * **Affine offset/stride plans.** Every array access whose subscripts are
//!   affine over the iterators compiles to an affine form over frame slots,
//!   folded with the (unshadowed) parameter bindings. Inside an innermost
//!   loop the flat element offset of each access then advances by a constant
//!   stride per iteration, so both drivers run on incremental adds.
//! * **Closed-form zero-trip and constant-bound loops.** Bounds that fold to
//!   constants at lowering are evaluated exactly once; a loop whose domain is
//!   empty is skipped without touching its body, and statement/access counts
//!   of compiled innermost loops are computed as `trips * plan_len` instead
//!   of being accumulated per iteration.
//!
//! Two drivers share the lowering:
//!
//! * [`CompiledProgram::execute`] runs the program semantics over a
//!   [`ProgramData`] store — bit-identical array state to the retained
//!   tree-walking interpreter ([`crate::interp::reference`]) on every valid
//!   program, with full per-dimension bounds checking.
//! * [`CompiledProgram::stream`] emits the exact access trace into an
//!   [`AccessSink`], every compiled innermost loop as one closed-form
//!   lockstep [`crate::trace::StrideRun`] group ([`AccessSink::run_group`])
//!   built straight from the offset/stride plans — bit-identical to the
//!   retained symbolic walker ([`crate::trace::walk_accesses_symbolic`]).
//!
//! # Divergences on *invalid* programs
//!
//! Lowering is eager: unbound variables, non-positive steps and rank
//! mismatches are reported before anything executes, whereas the reference
//! walkers only failed upon reaching the offending node. Valid programs are
//! unaffected — in particular, a computation whose loads sit inside
//! [`ScalarExpr::Select`] branches (the boundary-condition idiom, where the
//! untaken branch may index out of bounds) is excluded from the semantic
//! fast path and executes with the reference's lazy evaluation. The
//! differential test suite pins the bit-identical behaviour on the whole
//! PolyBench + CLOUDSC corpus.

use std::collections::{BTreeMap, BTreeSet};

use loop_ir::array::AccessKind;
use loop_ir::expr::{AffineExpr, Expr, Var};
use loop_ir::nest::{BlasCall, BlasKind, Computation, Loop, Node};
use loop_ir::program::Program;
use loop_ir::scalar::{BinOp, CmpOp, ScalarExpr, UnaryOp};

use crate::blas;
use crate::cache::AddressMap;
use crate::error::{MachineError, Result};
use crate::interp::ProgramData;
use crate::trace::{AccessSink, StrideRun, TraceEntry};

// ---------------------------------------------------------------------------
// Compiled forms
// ---------------------------------------------------------------------------

/// An affine integer expression over frame slots: `constant + Σ coeff·frame[slot]`.
#[derive(Debug, Clone, Default)]
struct CAffine {
    constant: i64,
    terms: Vec<(usize, i64)>,
}

impl CAffine {
    fn eval(&self, frame: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(slot, coeff) in &self.terms {
            acc += coeff * frame[slot];
        }
        acc
    }

    /// Coefficient of the given slot (zero if absent).
    fn coeff(&self, slot: usize) -> i64 {
        self.terms
            .iter()
            .find(|(s, _)| *s == slot)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }
}

/// A compiled integer expression. Affine expressions (the common case for
/// bounds and subscripts) evaluate without tree-walking; the general variants
/// mirror [`Expr`] with variables resolved to frame slots.
#[derive(Debug, Clone)]
enum CExpr {
    Const(i64),
    Affine(CAffine),
    Add(Box<CExpr>, Box<CExpr>),
    Sub(Box<CExpr>, Box<CExpr>),
    Mul(Box<CExpr>, Box<CExpr>),
    Div(Box<CExpr>, Box<CExpr>),
    Mod(Box<CExpr>, Box<CExpr>),
    Min(Box<CExpr>, Box<CExpr>),
    Max(Box<CExpr>, Box<CExpr>),
    Neg(Box<CExpr>),
}

impl CExpr {
    /// Evaluates against the frame; `None` on division by zero (mirroring
    /// [`Expr::eval`]).
    fn eval(&self, frame: &[i64]) -> Option<i64> {
        match self {
            CExpr::Const(c) => Some(*c),
            CExpr::Affine(a) => Some(a.eval(frame)),
            CExpr::Add(a, b) => Some(a.eval(frame)? + b.eval(frame)?),
            CExpr::Sub(a, b) => Some(a.eval(frame)? - b.eval(frame)?),
            CExpr::Mul(a, b) => Some(a.eval(frame)? * b.eval(frame)?),
            CExpr::Div(a, b) => {
                let d = b.eval(frame)?;
                if d == 0 {
                    None
                } else {
                    Some(a.eval(frame)?.div_euclid(d))
                }
            }
            CExpr::Mod(a, b) => {
                let d = b.eval(frame)?;
                if d == 0 {
                    None
                } else {
                    Some(a.eval(frame)?.rem_euclid(d))
                }
            }
            CExpr::Min(a, b) => Some(a.eval(frame)?.min(b.eval(frame)?)),
            CExpr::Max(a, b) => Some(a.eval(frame)?.max(b.eval(frame)?)),
            CExpr::Neg(a) => Some(-a.eval(frame)?),
        }
    }
}

/// A compiled bound: the compiled expression plus the source expression for
/// error messages (errors are the cold path; the clone is paid once at
/// lowering).
#[derive(Debug, Clone)]
struct CBound {
    compiled: CExpr,
    source: Expr,
}

impl CBound {
    fn eval(&self, frame: &[i64]) -> Result<i64> {
        self.compiled
            .eval(frame)
            .ok_or_else(|| MachineError::UnboundVariable(self.source.to_string()))
    }
}

/// One compiled memory access of a computation (or library-call operand).
#[derive(Debug, Clone)]
enum CAccess {
    /// All subscripts affine: per-dimension affine indices (for bounds
    /// checks) plus the precombined flat element offset.
    Affine {
        array: usize,
        is_write: bool,
        dims: Vec<(CAffine, i64)>,
        flat: CAffine,
    },
    /// At least one non-affine subscript: evaluated per dimension.
    Symbolic {
        array: usize,
        is_write: bool,
        indices: Vec<CBound>,
    },
}

impl CAccess {
    fn is_write(&self) -> bool {
        match self {
            CAccess::Affine { is_write, .. } | CAccess::Symbolic { is_write, .. } => *is_write,
        }
    }
}

/// A compiled scalar expression; mirrors [`ScalarExpr`] with loads resolved
/// to positions in the owning computation's access list and scalar
/// parameters folded to constants.
#[derive(Debug, Clone)]
enum CScalar {
    Load(usize),
    Const(f64),
    Index(Box<CBound>),
    Unary(UnaryOp, Box<CScalar>),
    Binary(BinOp, Box<CScalar>, Box<CScalar>),
    Select {
        lhs: Box<CScalar>,
        cmp: CmpOp,
        rhs: Box<CScalar>,
        then: Box<CScalar>,
        otherwise: Box<CScalar>,
    },
}

/// One instruction of a [`Postfix`] program.
#[derive(Debug, Clone, Copy)]
enum POp {
    /// Push the prefetched load at the given position.
    Load(u32),
    /// Push a constant.
    Const(f64),
    /// Pop one value, push `op(value)`.
    Unary(UnaryOp),
    /// Pop rhs then lhs, push `lhs op rhs`.
    Binary(BinOp),
    /// Pop otherwise, then, rhs, lhs; push `then` if `lhs cmp rhs` else
    /// `otherwise`. Both branches are evaluated — they are pure `f64`
    /// arithmetic, so the selected value is bit-identical to the
    /// short-circuiting tree walk.
    Select(CmpOp),
}

/// A scalar expression flattened to postfix form: no recursion, no error
/// plumbing, evaluated on a small value stack. Only expressions without
/// [`CScalar::Index`] leaves flatten (an `Index` can fail on division by
/// zero and needs the loop frame); the rest keep the tree walk.
#[derive(Debug, Clone)]
struct Postfix {
    ops: Vec<POp>,
}

impl Postfix {
    fn try_compile(e: &CScalar) -> Option<Postfix> {
        let mut ops = Vec::new();
        Self::flatten(e, &mut ops)?;
        Some(Postfix { ops })
    }

    fn flatten(e: &CScalar, ops: &mut Vec<POp>) -> Option<()> {
        match e {
            CScalar::Load(k) => ops.push(POp::Load(*k as u32)),
            CScalar::Const(c) => ops.push(POp::Const(*c)),
            CScalar::Index(_) => return None,
            CScalar::Unary(op, a) => {
                Self::flatten(a, ops)?;
                ops.push(POp::Unary(*op));
            }
            CScalar::Binary(op, a, b) => {
                Self::flatten(a, ops)?;
                Self::flatten(b, ops)?;
                ops.push(POp::Binary(*op));
            }
            CScalar::Select {
                lhs,
                cmp,
                rhs,
                then,
                otherwise,
            } => {
                Self::flatten(lhs, ops)?;
                Self::flatten(rhs, ops)?;
                Self::flatten(then, ops)?;
                Self::flatten(otherwise, ops)?;
                ops.push(POp::Select(*cmp));
            }
        }
        Some(())
    }

    /// Evaluates against prefetched loads. `stack` is caller-provided
    /// scratch, cleared here.
    fn eval(&self, loads: &[f64], stack: &mut Vec<f64>) -> f64 {
        stack.clear();
        for op in &self.ops {
            match *op {
                POp::Load(k) => stack.push(loads[k as usize]),
                POp::Const(c) => stack.push(c),
                POp::Unary(op) => {
                    let a = stack.pop().expect("postfix stack underflow");
                    stack.push(op.apply(a));
                }
                POp::Binary(op) => {
                    let rhs = stack.pop().expect("postfix stack underflow");
                    let lhs = stack.pop().expect("postfix stack underflow");
                    stack.push(op.apply(lhs, rhs));
                }
                POp::Select(cmp) => {
                    let otherwise = stack.pop().expect("postfix stack underflow");
                    let then = stack.pop().expect("postfix stack underflow");
                    let rhs = stack.pop().expect("postfix stack underflow");
                    let lhs = stack.pop().expect("postfix stack underflow");
                    stack.push(if cmp.apply(lhs, rhs) { then } else { otherwise });
                }
            }
        }
        stack.pop().expect("postfix leaves one value")
    }
}

/// A compiled computation. `accesses` is in [`Computation::accesses`] order:
/// the `n_loads` value loads, then (for reductions) the read of the target,
/// then the write of the target.
#[derive(Debug, Clone)]
struct CComp {
    accesses: Vec<CAccess>,
    n_loads: usize,
    reduction: Option<BinOp>,
    value: CScalar,
    /// Flattened form of `value`, used by the innermost fast path.
    postfix: Option<Postfix>,
    /// True when some load sits inside a select branch, i.e. the reference
    /// interpreter may never evaluate (or bounds-check) it.
    conditional_loads: bool,
}

/// True when a load of the expression sits inside a [`ScalarExpr::Select`]
/// `then`/`otherwise` branch (the comparison operands are always evaluated).
fn has_conditional_loads(e: &ScalarExpr) -> bool {
    match e {
        ScalarExpr::Load(_)
        | ScalarExpr::Const(_)
        | ScalarExpr::Param(_)
        | ScalarExpr::Index(_) => false,
        ScalarExpr::Unary(_, a) => has_conditional_loads(a),
        ScalarExpr::Binary(_, a, b) => has_conditional_loads(a) || has_conditional_loads(b),
        ScalarExpr::Select {
            lhs,
            rhs,
            then,
            otherwise,
            ..
        } => {
            has_conditional_loads(lhs)
                || has_conditional_loads(rhs)
                || !then.loads().is_empty()
                || !otherwise.loads().is_empty()
        }
    }
}

impl CComp {
    fn target(&self) -> &CAccess {
        self.accesses.last().expect("accesses end with the write")
    }
}

/// A compiled library call.
#[derive(Debug, Clone)]
struct CCall {
    kind: BlasKind,
    output: usize,
    inputs: Vec<usize>,
    dims: Vec<CExpr>,
    alpha: CScalar,
    alpha_accesses: Vec<CAccess>,
    beta: CScalar,
    beta_accesses: Vec<CAccess>,
}

/// A compiled loop.
#[derive(Debug, Clone)]
struct CLoop {
    slot: usize,
    lower: CBound,
    upper: CBound,
    step: i64,
    body: Vec<CNode>,
    /// True when the body consists solely of computations whose accesses are
    /// all affine — the precondition for the incremental innermost plans of
    /// the trace walker (which emits every access unconditionally, exactly
    /// like the symbolic reference walker).
    inner: bool,
    /// Like [`inner`](CLoop::inner), but additionally no computation loads
    /// through an untaken-able [`ScalarExpr::Select`] branch. The *semantic*
    /// fast path prefetches and endpoint-bounds-checks every access, so a
    /// select-guarded boundary load (`i >= 1 ? A[i-1] : 0.0`) must take the
    /// generic path, whose lazy evaluation matches the reference
    /// interpreter exactly.
    inner_exec: bool,
    /// Access-list base offset of each body node inside the shared cursor
    /// scratch, precomputed so loop entries allocate nothing.
    bases: Vec<usize>,
    /// True when the subtree's *trace* is independent of this loop's
    /// iterator: every access in the body is affine with a zero coefficient
    /// on the loop's slot, and no descendant loop bound references it. Such
    /// a loop re-emits the identical access sequence every iteration, so
    /// summarizing sinks can consume the body once through the
    /// [`AccessSink::begin_repeat`] protocol.
    trace_invariant: bool,
}

#[derive(Debug, Clone)]
enum CNode {
    Loop(CLoop),
    Comp(CComp),
    Call(CCall),
}

/// Whether a compiled bound provably does not depend on `slot`. Non-affine
/// bounds answer `false` conservatively.
fn bound_independent(b: &CBound, slot: usize) -> bool {
    match &b.compiled {
        CExpr::Const(_) => true,
        CExpr::Affine(a) => a.coeff(slot) == 0,
        _ => false,
    }
}

/// Whether the trace emitted by `nodes` is provably identical for every
/// value of `frame[slot]`: all accesses are affine with a zero coefficient
/// on the slot and no descendant loop bound references it. Symbolic
/// accesses answer `false` conservatively; library calls emit nothing into
/// the trace and are neutral.
fn subtree_trace_invariant(nodes: &[CNode], slot: usize) -> bool {
    nodes.iter().all(|node| match node {
        CNode::Comp(c) => c.accesses.iter().all(|a| match a {
            CAccess::Affine { flat, .. } => flat.coeff(slot) == 0,
            CAccess::Symbolic { .. } => false,
        }),
        CNode::Loop(inner) => {
            bound_independent(&inner.lower, slot)
                && bound_independent(&inner.upper, slot)
                && subtree_trace_invariant(&inner.body, slot)
        }
        CNode::Call(_) => true,
    })
}

/// Per-array lowering result: name, layout and the trace base address.
#[derive(Debug, Clone)]
struct CArray {
    name: Var,
    /// `None` when the extents cannot be evaluated (only an error if the
    /// array is actually accessed).
    layout: Option<Layout>,
    elem_size: usize,
    base: u64,
}

#[derive(Debug, Clone)]
struct Layout {
    dims: Vec<i64>,
    strides: Vec<i64>,
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// A program lowered for repeated execution: the shared engine behind the
/// interpreter ([`execute`](CompiledProgram::execute)) and the trace walker
/// ([`stream`](CompiledProgram::stream)).
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    nodes: Vec<CNode>,
    frame_init: Vec<i64>,
    arrays: Vec<CArray>,
}

struct Lowerer<'p> {
    program: &'p Program,
    slots: BTreeMap<Var, usize>,
    frame_init: Vec<i64>,
    arrays: Vec<CArray>,
    array_slots: BTreeMap<Var, usize>,
    /// Parameter bindings folded into affine subscripts: every parameter not
    /// shadowed by a loop iterator somewhere in the program.
    fold_bindings: BTreeMap<Var, i64>,
}

impl CompiledProgram {
    /// Lowers a program. Performed once; the result can drive any number of
    /// executions and trace walks.
    ///
    /// # Errors
    /// Unbound variables or sizes, non-positive loop steps and subscript
    /// rank mismatches are reported here, before anything executes.
    pub fn lower(program: &Program) -> Result<CompiledProgram> {
        let map = AddressMap::for_program(program);
        let mut arrays = Vec::new();
        let mut array_slots = BTreeMap::new();
        for (name, array) in &program.arrays {
            let layout = array.concrete_dims(&program.params).and_then(|dims| {
                if dims.iter().any(|d| *d < 0) {
                    return None;
                }
                array
                    .strides(&program.params)
                    .map(|strides| Layout { dims, strides })
            });
            array_slots.insert(name.clone(), arrays.len());
            arrays.push(CArray {
                name: name.clone(),
                layout,
                elem_size: array.elem_size,
                base: map.base(name.as_str()).unwrap_or(0),
            });
        }

        // Iterators that shadow a parameter keep the parameter out of
        // constant folding: its frame slot is rebound inside such loops.
        let mut iterators = BTreeSet::new();
        fn collect_iterators(node: &Node, out: &mut BTreeSet<Var>) {
            if let Node::Loop(l) = node {
                out.insert(l.iter.clone());
                for n in &l.body {
                    collect_iterators(n, out);
                }
            }
        }
        for node in &program.body {
            collect_iterators(node, &mut iterators);
        }
        let fold_bindings: BTreeMap<Var, i64> = program
            .params
            .iter()
            .filter(|(name, _)| !iterators.contains(*name))
            .map(|(name, value)| (name.clone(), *value))
            .collect();

        let mut lowerer = Lowerer {
            program,
            slots: BTreeMap::new(),
            frame_init: Vec::new(),
            arrays,
            array_slots,
            fold_bindings,
        };
        for (name, value) in &program.params {
            let slot = lowerer.frame_init.len();
            lowerer.slots.insert(name.clone(), slot);
            lowerer.frame_init.push(*value);
        }
        let nodes = program
            .body
            .iter()
            .map(|node| lowerer.lower_node(node))
            .collect::<Result<Vec<_>>>()?;
        Ok(CompiledProgram {
            nodes,
            frame_init: lowerer.frame_init,
            arrays: lowerer.arrays,
        })
    }

    /// Names of the arrays in slot order, for storage-compatibility checks.
    fn check_data(&self, data: &ProgramData) -> Result<()> {
        let names = data.array_names();
        if names.len() != self.arrays.len()
            || self.arrays.iter().zip(names).any(|(a, n)| &a.name != n)
        {
            return Err(MachineError::UnknownArray(
                "program data does not match the compiled program".to_string(),
            ));
        }
        Ok(())
    }
}

impl<'p> Lowerer<'p> {
    fn slot_of(&mut self, v: &Var) -> Result<usize> {
        if let Some(slot) = self.slots.get(v) {
            return Ok(*slot);
        }
        Err(MachineError::UnboundVariable(v.to_string()))
    }

    /// Slot for a loop iterator: reuses an existing slot of the same name
    /// (shadowed parameters, repeated iterator names across sibling loops —
    /// the runtime saves and restores the slot around the loop).
    fn iterator_slot(&mut self, v: &Var) -> usize {
        if let Some(slot) = self.slots.get(v) {
            return *slot;
        }
        let slot = self.frame_init.len();
        self.slots.insert(v.clone(), slot);
        self.frame_init.push(0);
        slot
    }

    fn lower_affine(&mut self, affine: &AffineExpr) -> Result<CAffine> {
        let mut out = CAffine {
            constant: affine.constant_part(),
            terms: Vec::new(),
        };
        for (v, c) in affine.terms() {
            out.terms.push((self.slot_of(v)?, c));
        }
        Ok(out)
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<CExpr> {
        if let Some(affine) = e.fold_params(&self.fold_bindings).as_affine() {
            return Ok(match affine.as_constant() {
                Some(c) => CExpr::Const(c),
                None => CExpr::Affine(self.lower_affine(&affine)?),
            });
        }
        let bin = |l: &mut Self, a: &Expr, b: &Expr| -> Result<(Box<CExpr>, Box<CExpr>)> {
            Ok((Box::new(l.lower_expr(a)?), Box::new(l.lower_expr(b)?)))
        };
        Ok(match e {
            Expr::Const(c) => CExpr::Const(*c),
            Expr::Var(v) => CExpr::Affine(CAffine {
                constant: 0,
                terms: vec![(self.slot_of(v)?, 1)],
            }),
            Expr::Add(a, b) => {
                let (a, b) = bin(self, a, b)?;
                CExpr::Add(a, b)
            }
            Expr::Sub(a, b) => {
                let (a, b) = bin(self, a, b)?;
                CExpr::Sub(a, b)
            }
            Expr::Mul(a, b) => {
                let (a, b) = bin(self, a, b)?;
                CExpr::Mul(a, b)
            }
            Expr::Div(a, b) => {
                let (a, b) = bin(self, a, b)?;
                CExpr::Div(a, b)
            }
            Expr::Mod(a, b) => {
                let (a, b) = bin(self, a, b)?;
                CExpr::Mod(a, b)
            }
            Expr::Min(a, b) => {
                let (a, b) = bin(self, a, b)?;
                CExpr::Min(a, b)
            }
            Expr::Max(a, b) => {
                let (a, b) = bin(self, a, b)?;
                CExpr::Max(a, b)
            }
            Expr::Neg(a) => CExpr::Neg(Box::new(self.lower_expr(a)?)),
        })
    }

    fn lower_bound(&mut self, e: &Expr) -> Result<CBound> {
        Ok(CBound {
            compiled: self.lower_expr(e)?,
            source: e.clone(),
        })
    }

    fn lower_access(
        &mut self,
        array_ref: &loop_ir::array::ArrayRef,
        is_write: bool,
    ) -> Result<CAccess> {
        let array = *self
            .array_slots
            .get(&array_ref.array)
            .ok_or_else(|| MachineError::UnknownArray(array_ref.array.to_string()))?;
        let layout = self.arrays[array]
            .layout
            .as_ref()
            .ok_or_else(|| MachineError::UnboundSize(array_ref.array.to_string()))?
            .clone();
        if layout.dims.len() != array_ref.indices.len() {
            return Err(MachineError::OutOfBounds {
                array: array_ref.array.to_string(),
                index: -1,
            });
        }
        let affine: Option<Vec<AffineExpr>> = array_ref
            .indices
            .iter()
            .map(|e| e.fold_params(&self.fold_bindings).as_affine())
            .collect();
        match affine {
            Some(indices) => {
                let mut dims = Vec::with_capacity(indices.len());
                let mut flat = CAffine::default();
                for ((affine, extent), stride) in
                    indices.iter().zip(&layout.dims).zip(&layout.strides)
                {
                    let compiled = self.lower_affine(affine)?;
                    flat.constant += compiled.constant * stride;
                    for &(slot, coeff) in &compiled.terms {
                        match flat.terms.iter_mut().find(|(s, _)| *s == slot) {
                            Some(term) => term.1 += coeff * stride,
                            None => flat.terms.push((slot, coeff * stride)),
                        }
                    }
                    dims.push((compiled, *extent));
                }
                flat.terms.retain(|(_, c)| *c != 0);
                Ok(CAccess::Affine {
                    array,
                    is_write,
                    dims,
                    flat,
                })
            }
            None => Ok(CAccess::Symbolic {
                array,
                is_write,
                indices: array_ref
                    .indices
                    .iter()
                    .map(|e| self.lower_bound(e))
                    .collect::<Result<Vec<_>>>()?,
            }),
        }
    }

    /// Lowers a scalar expression; loads are numbered in
    /// [`ScalarExpr::loads`] order via `next_load`.
    fn lower_scalar(&mut self, e: &ScalarExpr, next_load: &mut usize) -> Result<CScalar> {
        Ok(match e {
            ScalarExpr::Load(_) => {
                let k = *next_load;
                *next_load += 1;
                CScalar::Load(k)
            }
            ScalarExpr::Const(c) => CScalar::Const(*c),
            ScalarExpr::Param(p) => CScalar::Const(
                self.program
                    .scalar_params
                    .get(p)
                    .copied()
                    .ok_or_else(|| MachineError::UnboundVariable(p.to_string()))?,
            ),
            ScalarExpr::Index(e) => CScalar::Index(Box::new(self.lower_bound(e)?)),
            ScalarExpr::Unary(op, a) => {
                CScalar::Unary(*op, Box::new(self.lower_scalar(a, next_load)?))
            }
            ScalarExpr::Binary(op, a, b) => CScalar::Binary(
                *op,
                Box::new(self.lower_scalar(a, next_load)?),
                Box::new(self.lower_scalar(b, next_load)?),
            ),
            ScalarExpr::Select {
                lhs,
                cmp,
                rhs,
                then,
                otherwise,
            } => CScalar::Select {
                lhs: Box::new(self.lower_scalar(lhs, next_load)?),
                cmp: *cmp,
                rhs: Box::new(self.lower_scalar(rhs, next_load)?),
                then: Box::new(self.lower_scalar(then, next_load)?),
                otherwise: Box::new(self.lower_scalar(otherwise, next_load)?),
            },
        })
    }

    fn lower_comp(&mut self, comp: &Computation) -> Result<CComp> {
        let accesses = comp
            .accesses()
            .iter()
            .map(|a| self.lower_access(&a.array_ref, a.kind == AccessKind::Write))
            .collect::<Result<Vec<_>>>()?;
        let n_loads = comp.value.loads().len();
        let mut next_load = 0usize;
        let value = self.lower_scalar(&comp.value, &mut next_load)?;
        debug_assert_eq!(next_load, n_loads);
        let postfix = Postfix::try_compile(&value);
        Ok(CComp {
            accesses,
            n_loads,
            reduction: comp.reduction,
            value,
            postfix,
            conditional_loads: has_conditional_loads(&comp.value),
        })
    }

    fn lower_call(&mut self, call: &BlasCall) -> Result<CCall> {
        let array_slot = |l: &Self, name: &Var| -> Result<usize> {
            l.array_slots
                .get(name)
                .copied()
                .ok_or_else(|| MachineError::UnknownArray(name.to_string()))
        };
        let output = array_slot(self, &call.output)?;
        let inputs = call
            .inputs
            .iter()
            .map(|name| array_slot(self, name))
            .collect::<Result<Vec<_>>>()?;
        let dims = call
            .dims
            .iter()
            .map(|d| self.lower_expr(d))
            .collect::<Result<Vec<_>>>()?;
        let lower_operand = |l: &mut Self, e: &ScalarExpr| -> Result<(CScalar, Vec<CAccess>)> {
            let accesses = e
                .loads()
                .iter()
                .map(|r| l.lower_access(r, false))
                .collect::<Result<Vec<_>>>()?;
            let mut next = 0usize;
            let scalar = l.lower_scalar(e, &mut next)?;
            Ok((scalar, accesses))
        };
        let (alpha, alpha_accesses) = lower_operand(self, &call.alpha)?;
        let (beta, beta_accesses) = lower_operand(self, &call.beta)?;
        Ok(CCall {
            kind: call.kind,
            output,
            inputs,
            dims,
            alpha,
            alpha_accesses,
            beta,
            beta_accesses,
        })
    }

    fn lower_loop(&mut self, l: &Loop) -> Result<CLoop> {
        if l.step <= 0 {
            return Err(MachineError::InvalidLoop(l.iter.to_string()));
        }
        let lower = self.lower_bound(&l.lower)?;
        let upper = self.lower_bound(&l.upper)?;
        let slot = self.iterator_slot(&l.iter);
        let body = l
            .body
            .iter()
            .map(|n| self.lower_node(n))
            .collect::<Result<Vec<_>>>()?;
        let inner = body.iter().all(|n| {
            matches!(n, CNode::Comp(c)
                if c.accesses.iter().all(|a| matches!(a, CAccess::Affine { .. })))
        });
        let inner_exec = inner
            && body
                .iter()
                .all(|n| matches!(n, CNode::Comp(c) if !c.conditional_loads));
        let bases = if inner {
            let mut bases = Vec::with_capacity(body.len());
            let mut base = 0usize;
            for node in &body {
                bases.push(base);
                if let CNode::Comp(c) = node {
                    base += c.accesses.len();
                }
            }
            bases
        } else {
            Vec::new()
        };
        Ok(CLoop {
            trace_invariant: subtree_trace_invariant(&body, slot),
            slot,
            lower,
            upper,
            step: l.step,
            body,
            inner,
            inner_exec,
            bases,
        })
    }

    fn lower_node(&mut self, node: &Node) -> Result<CNode> {
        Ok(match node {
            Node::Loop(l) => CNode::Loop(self.lower_loop(l)?),
            Node::Computation(c) => CNode::Comp(self.lower_comp(c)?),
            Node::Call(call) => CNode::Call(self.lower_call(call)?),
        })
    }
}

// ---------------------------------------------------------------------------
// Semantic execution
// ---------------------------------------------------------------------------

/// Flat-offset cursor of one access inside a compiled innermost loop.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    array: usize,
    offset: i64,
    stride: i64,
}

struct Executor<'a, 'c> {
    compiled: &'c CompiledProgram,
    data: &'a mut ProgramData,
    frame: Vec<i64>,
    statements: u64,
    /// Scratch reused across innermost-loop entries (innermost loops cannot
    /// nest, so one buffer suffices).
    cursors: Vec<Cursor>,
    loads: Vec<f64>,
    stack: Vec<f64>,
}

impl CompiledProgram {
    /// Executes the program semantics over `data`, returning the number of
    /// computation instances executed.
    ///
    /// # Errors
    /// Out-of-bounds accesses and non-evaluable expressions; `data` is left
    /// in an unspecified (partially updated) state on error.
    pub fn execute(&self, data: &mut ProgramData) -> Result<u64> {
        self.check_data(data)?;
        let mut exec = Executor {
            compiled: self,
            data,
            frame: self.frame_init.clone(),
            statements: 0,
            cursors: Vec::new(),
            loads: Vec::new(),
            stack: Vec::new(),
        };
        for node in &self.nodes {
            exec.exec_node(node)?;
        }
        Ok(exec.statements)
    }
}

impl Executor<'_, '_> {
    fn exec_node(&mut self, node: &CNode) -> Result<()> {
        match node {
            CNode::Loop(l) => self.exec_loop(l),
            CNode::Comp(c) => self.exec_comp(c),
            CNode::Call(c) => self.exec_call(c),
        }
    }

    fn exec_loop(&mut self, l: &CLoop) -> Result<()> {
        let lower = l.lower.eval(&self.frame)?;
        let upper = l.upper.eval(&self.frame)?;
        if upper <= lower {
            // Zero-trip: closed form, the body is never touched.
            return Ok(());
        }
        let saved = self.frame[l.slot];
        let result = if l.inner_exec {
            telemetry::counter("machine.exec.compiled_inner_loops", 1);
            let trips = (upper - lower + l.step - 1) / l.step;
            self.exec_inner(l, lower, trips)
        } else {
            if l.inner {
                // Trace-innermost but not exec-compilable: the interpreter
                // walks it one iteration at a time.
                telemetry::counter("machine.exec.interp_fallback_loops", 1);
            }
            let mut v = lower;
            loop {
                self.frame[l.slot] = v;
                for child in &l.body {
                    self.exec_node(child)?;
                }
                v += l.step;
                if v >= upper {
                    break Ok(());
                }
            }
        };
        self.frame[l.slot] = saved;
        result
    }

    /// The innermost fast path: flat offsets advance by constant strides,
    /// per-dimension bounds are verified once at the domain endpoints
    /// (affine indices of a single varying iterator are monotonic).
    fn exec_inner(&mut self, l: &CLoop, lower: i64, trips: i64) -> Result<()> {
        self.frame[l.slot] = lower;
        self.cursors.clear();
        for node in &l.body {
            let CNode::Comp(comp) = node else {
                unreachable!("inner loops contain only computations")
            };
            for access in &comp.accesses {
                let CAccess::Affine {
                    array, dims, flat, ..
                } = access
                else {
                    unreachable!("inner accesses are affine")
                };
                for (affine, extent) in dims {
                    let start = affine.eval(&self.frame);
                    let last = start + affine.coeff(l.slot) * l.step * (trips - 1);
                    for endpoint in [start, last] {
                        if endpoint < 0 || endpoint >= *extent {
                            return Err(MachineError::OutOfBounds {
                                array: self.compiled.arrays[*array].name.to_string(),
                                index: endpoint,
                            });
                        }
                    }
                }
                self.cursors.push(Cursor {
                    array: *array,
                    offset: flat.eval(&self.frame),
                    stride: flat.coeff(l.slot) * l.step,
                });
            }
        }
        let max_loads = l
            .body
            .iter()
            .map(|node| match node {
                CNode::Comp(c) => c.n_loads,
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        if self.loads.len() < max_loads {
            self.loads.resize(max_loads, 0.0);
        }
        let mut v = lower;
        for _ in 0..trips {
            self.frame[l.slot] = v;
            for (node, &base) in l.body.iter().zip(&l.bases) {
                let CNode::Comp(comp) = node else {
                    unreachable!("inner loops contain only computations")
                };
                // Split the executor's fields so the prefetch can advance
                // cursors while reading array data in one pass.
                let span = base..base + comp.accesses.len();
                let cursors = &mut self.cursors[span];
                let (load_cursors, rest) = cursors.split_at_mut(comp.n_loads);
                for (slot, cursor) in self.loads.iter_mut().zip(load_cursors.iter_mut()) {
                    *slot = self.data.storage(cursor.array).data[cursor.offset as usize];
                    cursor.offset += cursor.stride;
                }
                let value = match &comp.postfix {
                    Some(postfix) => postfix.eval(&self.loads, &mut self.stack),
                    None => eval_scalar_buffered(&comp.value, &self.loads, &self.frame)?,
                };
                let target = *rest.last().expect("accesses end with the write");
                for cursor in rest {
                    cursor.offset += cursor.stride;
                }
                let slot = &mut self.data.storage_mut(target.array).data[target.offset as usize];
                *slot = match comp.reduction {
                    Some(op) => op.apply(*slot, value),
                    None => value,
                };
            }
            v += l.step;
        }
        self.statements += trips as u64 * l.body.len() as u64;
        Ok(())
    }

    /// Resolves an access to `(array, flat index)` with per-dimension bounds
    /// checks — the generic path outside compiled innermost loops.
    fn access_flat(&self, access: &CAccess) -> Result<(usize, usize)> {
        match access {
            CAccess::Affine {
                array, dims, flat, ..
            } => {
                for (affine, extent) in dims {
                    let idx = affine.eval(&self.frame);
                    if idx < 0 || idx >= *extent {
                        return Err(MachineError::OutOfBounds {
                            array: self.compiled.arrays[*array].name.to_string(),
                            index: idx,
                        });
                    }
                }
                Ok((*array, flat.eval(&self.frame) as usize))
            }
            CAccess::Symbolic { array, indices, .. } => {
                let layout = self.compiled.arrays[*array]
                    .layout
                    .as_ref()
                    .expect("symbolic accesses lower only with a layout");
                let mut flat = 0i64;
                for ((bound, extent), stride) in
                    indices.iter().zip(&layout.dims).zip(&layout.strides)
                {
                    let idx = bound.eval(&self.frame)?;
                    if idx < 0 || idx >= *extent {
                        return Err(MachineError::OutOfBounds {
                            array: self.compiled.arrays[*array].name.to_string(),
                            index: idx,
                        });
                    }
                    flat += idx * stride;
                }
                Ok((*array, flat as usize))
            }
        }
    }

    fn load_access(&self, access: &CAccess) -> Result<f64> {
        let (array, flat) = self.access_flat(access)?;
        Ok(self.data.storage(array).data[flat])
    }

    /// Evaluates a compiled scalar with loads resolved on demand (lazily for
    /// untaken select branches, exactly like the reference interpreter).
    fn eval_scalar_direct(&self, e: &CScalar, accesses: &[CAccess]) -> Result<f64> {
        Ok(match e {
            CScalar::Load(k) => self.load_access(&accesses[*k])?,
            CScalar::Const(c) => *c,
            CScalar::Index(b) => b.eval(&self.frame)? as f64,
            CScalar::Unary(op, a) => op.apply(self.eval_scalar_direct(a, accesses)?),
            CScalar::Binary(op, a, b) => op.apply(
                self.eval_scalar_direct(a, accesses)?,
                self.eval_scalar_direct(b, accesses)?,
            ),
            CScalar::Select {
                lhs,
                cmp,
                rhs,
                then,
                otherwise,
            } => {
                let l = self.eval_scalar_direct(lhs, accesses)?;
                let r = self.eval_scalar_direct(rhs, accesses)?;
                if cmp.apply(l, r) {
                    self.eval_scalar_direct(then, accesses)?
                } else {
                    self.eval_scalar_direct(otherwise, accesses)?
                }
            }
        })
    }

    fn exec_comp(&mut self, comp: &CComp) -> Result<()> {
        self.statements += 1;
        let value = self.eval_scalar_direct(&comp.value, &comp.accesses)?;
        let (array, flat) = self.access_flat(comp.target())?;
        let result = match comp.reduction {
            Some(op) => op.apply(self.data.storage(array).data[flat], value),
            None => value,
        };
        self.data.storage_mut(array).data[flat] = result;
        Ok(())
    }

    fn exec_call(&mut self, call: &CCall) -> Result<()> {
        let dims: Option<Vec<i64>> = call.dims.iter().map(|d| d.eval(&self.frame)).collect();
        let dims = dims.ok_or_else(|| MachineError::UnboundVariable("blas dims".to_string()))?;
        let alpha = self.eval_scalar_direct(&call.alpha, &call.alpha_accesses)?;
        let beta = self.eval_scalar_direct(&call.beta, &call.beta_accesses)?;
        let input = |exec: &Self, i: usize| -> Result<Vec<f64>> {
            let slot = call
                .inputs
                .get(i)
                .copied()
                .ok_or_else(|| MachineError::UnknownArray(format!("blas input {i}")))?;
            Ok(exec.data.storage(slot).data.clone())
        };
        match call.kind {
            BlasKind::Gemm => {
                let (m, n, k) = (dims[0] as usize, dims[1] as usize, dims[2] as usize);
                let a = input(self, 0)?;
                let b = input(self, 1)?;
                let c = &mut self.data.storage_mut(call.output).data;
                blas::dgemm(m, n, k, alpha, &a, &b, beta, c);
            }
            BlasKind::Syrk => {
                let (n, k) = (dims[0] as usize, dims[1] as usize);
                let a = input(self, 0)?;
                let c = &mut self.data.storage_mut(call.output).data;
                blas::dsyrk(n, k, alpha, &a, beta, c);
            }
            BlasKind::Syr2k => {
                let (n, k) = (dims[0] as usize, dims[1] as usize);
                let a = input(self, 0)?;
                let b = input(self, 1)?;
                let c = &mut self.data.storage_mut(call.output).data;
                blas::dsyr2k(n, k, alpha, &a, &b, beta, c);
            }
            BlasKind::Gemv => {
                let (m, n) = (dims[0] as usize, dims[1] as usize);
                let a = input(self, 0)?;
                let x = input(self, 1)?;
                let y = &mut self.data.storage_mut(call.output).data;
                blas::dgemv(m, n, alpha, &a, &x, beta, y);
            }
        }
        Ok(())
    }
}

/// Evaluates a compiled scalar with loads prefetched into `loads` — the
/// tree-walking fallback of the innermost fast path, needed only when the
/// expression contains an [`CScalar::Index`] leaf (which reads the frame and
/// can fail on division by zero).
fn eval_scalar_buffered(e: &CScalar, loads: &[f64], frame: &[i64]) -> Result<f64> {
    Ok(match e {
        CScalar::Load(k) => loads[*k],
        CScalar::Const(c) => *c,
        CScalar::Index(b) => b.eval(frame)? as f64,
        CScalar::Unary(op, a) => op.apply(eval_scalar_buffered(a, loads, frame)?),
        CScalar::Binary(op, a, b) => op.apply(
            eval_scalar_buffered(a, loads, frame)?,
            eval_scalar_buffered(b, loads, frame)?,
        ),
        CScalar::Select {
            lhs,
            cmp,
            rhs,
            then,
            otherwise,
        } => {
            let l = eval_scalar_buffered(lhs, loads, frame)?;
            let r = eval_scalar_buffered(rhs, loads, frame)?;
            if cmp.apply(l, r) {
                eval_scalar_buffered(then, loads, frame)?
            } else {
                eval_scalar_buffered(otherwise, loads, frame)?
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Trace streaming
// ---------------------------------------------------------------------------

struct Streamer<'c> {
    compiled: &'c CompiledProgram,
    frame: Vec<i64>,
    count: u64,
    /// Scratch run-group plan reused across innermost-loop entries.
    runs: Vec<StrideRun>,
}

impl CompiledProgram {
    /// Streams the program's access trace in execution order into `sink`,
    /// emitting every compiled innermost loop as one lockstep
    /// [`StrideRun`] group ([`AccessSink::run_group`]) built straight from
    /// the affine offset/stride plans — individual addresses are only ever
    /// materialized by sinks that ask for them (the default `run_group`
    /// expansion). Returns the total number of accesses streamed.
    ///
    /// Addresses follow the [`AddressMap`] layout; negative offsets clamp to
    /// the array base, exactly like the symbolic reference walker.
    ///
    /// # Errors
    /// Non-evaluable bounds or subscripts.
    pub fn stream(&self, sink: &mut impl AccessSink) -> Result<u64> {
        let mut streamer = Streamer {
            compiled: self,
            frame: self.frame_init.clone(),
            count: 0,
            runs: Vec::new(),
        };
        for node in &self.nodes {
            streamer.stream_node(node, sink)?;
        }
        Ok(streamer.count)
    }

    /// Trip count of the block loop when this program is block-shardable:
    /// the body is exactly one top-level loop with nested structure (a flat
    /// innermost loop emits one lockstep run group for its whole domain, so
    /// cutting it per iteration would only deoptimize the stream). The
    /// bounds are evaluated against the initial frame — exactly the frame
    /// [`stream`](CompiledProgram::stream) evaluates them against, since a
    /// top-level loop streams before any iterator slot is written.
    ///
    /// `Some(0)` is a shardable zero-trip block loop; `None` means the
    /// program shards at run-group granularity instead.
    pub(crate) fn block_trips(&self) -> Option<u64> {
        let [CNode::Loop(l)] = self.nodes.as_slice() else {
            return None;
        };
        if l.inner {
            return None;
        }
        let lower = l.lower.eval(&self.frame_init).ok()?;
        let upper = l.upper.eval(&self.frame_init).ok()?;
        if upper <= lower {
            return Some(0);
        }
        Some(((upper - lower + l.step - 1) / l.step) as u64)
    }

    /// Streams trip indices `[lo, hi)` of the block loop — the sub-trace one
    /// shard of a block-granularity [`ShardPlan`](crate::shard::ShardPlan)
    /// simulates. Concatenating the streams of consecutive ranges covering
    /// `0..block_trips()` reproduces [`stream`](CompiledProgram::stream)'s
    /// emission order exactly: each iteration binds the block iterator and
    /// streams the body through the same per-node walk.
    ///
    /// # Errors
    /// [`MachineError::InvalidLoop`] when the program is not block-shardable
    /// ([`block_trips`](CompiledProgram::block_trips) is `None`); bound and
    /// subscript evaluation errors as in `stream`.
    pub(crate) fn stream_block_range(
        &self,
        lo: u64,
        hi: u64,
        sink: &mut impl AccessSink,
    ) -> Result<u64> {
        let trips = self.block_trips().ok_or_else(|| {
            MachineError::NotShardable("the program has no block loop".to_string())
        })?;
        let [CNode::Loop(l)] = self.nodes.as_slice() else {
            unreachable!("block_trips accepted the program shape")
        };
        let mut streamer = Streamer {
            compiled: self,
            frame: self.frame_init.clone(),
            count: 0,
            runs: Vec::new(),
        };
        let lower = l.lower.eval(&streamer.frame)?;
        let (lo, hi) = (lo.min(trips), hi.min(trips));
        for trip in lo..hi {
            streamer.frame[l.slot] = lower + trip as i64 * l.step;
            for child in &l.body {
                streamer.stream_node(child, sink)?;
            }
        }
        Ok(streamer.count)
    }
}

impl Streamer<'_> {
    fn stream_node(&mut self, node: &CNode, sink: &mut impl AccessSink) -> Result<()> {
        match node {
            CNode::Loop(l) => self.stream_loop(l, sink),
            CNode::Comp(c) => self.stream_comp(c, sink),
            // Library calls are opaque to the trace: their internal access
            // pattern belongs to the library, not to the program under study.
            CNode::Call(_) => Ok(()),
        }
    }

    fn stream_loop(&mut self, l: &CLoop, sink: &mut impl AccessSink) -> Result<()> {
        let lower = l.lower.eval(&self.frame)?;
        let upper = l.upper.eval(&self.frame)?;
        if upper <= lower {
            return Ok(());
        }
        let trips = (upper - lower + l.step - 1) / l.step;
        let saved = self.frame[l.slot];
        let result = if l.inner && self.stream_inner(l, lower, trips, sink) {
            telemetry::counter("machine.exec.compiled_stream_loops", 1);
            Ok(())
        } else if trips > 1 && l.trace_invariant && sink.begin_repeat(trips as u64) {
            // The subtree's emissions do not depend on this iterator: stream
            // one iteration and let the sink scale it by the trip count.
            telemetry::counter("machine.exec.stream_repeat_loops", 1);
            self.frame[l.slot] = lower;
            let before = self.count;
            let mut repeated = Ok(());
            for child in &l.body {
                if let Err(e) = self.stream_node(child, sink) {
                    repeated = Err(e);
                    break;
                }
            }
            sink.end_repeat();
            self.count += (trips as u64 - 1) * (self.count - before);
            repeated
        } else {
            if l.inner {
                // A clamping access bailed the run-group build: this loop
                // entry streams per access instead.
                telemetry::counter("machine.exec.stream_fallback_loops", 1);
            }
            let mut v = lower;
            loop {
                self.frame[l.slot] = v;
                for child in &l.body {
                    self.stream_node(child, sink)?;
                }
                v += l.step;
                if v >= upper {
                    break Ok(());
                }
            }
        };
        self.frame[l.slot] = saved;
        result
    }

    /// Streams a compiled innermost loop as one lockstep [`StrideRun`] group
    /// built directly from the offset/stride plans. Returns `false` when an
    /// access would clamp at address zero, in which case the caller takes
    /// the generic (clamping, bit-compatible) path.
    fn stream_inner(
        &mut self,
        l: &CLoop,
        lower: i64,
        trips: i64,
        sink: &mut impl AccessSink,
    ) -> bool {
        self.frame[l.slot] = lower;
        self.runs.clear();
        for node in &l.body {
            let CNode::Comp(comp) = node else {
                unreachable!("inner loops contain only computations")
            };
            for access in &comp.accesses {
                let CAccess::Affine {
                    array,
                    flat,
                    is_write,
                    ..
                } = access
                else {
                    unreachable!("inner accesses are affine")
                };
                let first = flat.eval(&self.frame);
                let stride_el = flat.coeff(l.slot);
                let last = first + stride_el * l.step * (trips - 1);
                if first < 0 || last < 0 {
                    // The AddressMap clamps negative offsets; replicate by
                    // falling back to the per-iteration path.
                    return false;
                }
                let carray = &self.compiled.arrays[*array];
                let elem = carray.elem_size as i64;
                self.runs.push(StrideRun {
                    base: carray.base + first as u64 * carray.elem_size as u64,
                    stride: stride_el * l.step * elem,
                    count: trips as u64,
                    array: *array as u32,
                    is_write: *is_write,
                });
            }
        }
        self.count += trips as u64 * self.runs.len() as u64;
        sink.run_group(&self.runs);
        true
    }

    /// Generic per-access emission (outside compiled innermost loops).
    fn stream_comp(&mut self, comp: &CComp, sink: &mut impl AccessSink) -> Result<()> {
        for access in &comp.accesses {
            let (array, offset) = match access {
                CAccess::Affine { array, flat, .. } => (*array, flat.eval(&self.frame)),
                CAccess::Symbolic { array, indices, .. } => {
                    let layout = self.compiled.arrays[*array]
                        .layout
                        .as_ref()
                        .expect("symbolic accesses lower only with a layout");
                    let mut offset = 0i64;
                    for (bound, stride) in indices.iter().zip(&layout.strides) {
                        offset += bound.eval(&self.frame)? * stride;
                    }
                    (*array, offset)
                }
            };
            let carray = &self.compiled.arrays[array];
            let address = carray.base + (offset.max(0) as u64) * carray.elem_size as u64;
            self.count += 1;
            sink.access(TraceEntry {
                address,
                is_write: access.is_write(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;

    fn lower(source: &str) -> CompiledProgram {
        CompiledProgram::lower(&parse_program(source).unwrap()).unwrap()
    }

    #[test]
    fn constant_bounds_fold_at_lowering() {
        let compiled = lower(
            "program c { param N = 8; array A[N];
               for i in 0..N { A[i] = 1.0; } }",
        );
        let CNode::Loop(l) = &compiled.nodes[0] else {
            panic!("expected a loop")
        };
        assert!(matches!(l.upper.compiled, CExpr::Const(8)));
        assert!(l.inner);
    }

    #[test]
    fn zero_trip_loops_execute_nothing() {
        let p = parse_program(
            "program z { param N = 0; array A[4];
               for i in 0..N { A[i] = 1.0; } }",
        )
        .unwrap();
        struct Drop0;
        impl AccessSink for Drop0 {
            fn access(&mut self, _entry: TraceEntry) {}
        }
        let compiled = CompiledProgram::lower(&p).unwrap();
        let mut data = ProgramData::zeroed(&p).unwrap();
        assert_eq!(compiled.execute(&mut data).unwrap(), 0);
        assert_eq!(data.array("A").unwrap(), &[0.0; 4]);
        assert_eq!(compiled.stream(&mut Drop0).unwrap(), 0);
    }

    #[test]
    fn block_range_streams_concatenate_to_the_whole_trace() {
        let p = parse_program(
            "program blocks { param NB = 5; param N = 4;
               array A[NB * N]; array B[NB * N];
               for b in 0..NB {
                 for i in 0..N { B[b * N + i] = A[b * N + i] + 1.0; }
               } }",
        )
        .unwrap();
        let compiled = CompiledProgram::lower(&p).unwrap();
        assert_eq!(compiled.block_trips(), Some(5));

        #[derive(Default)]
        struct Collect(Vec<TraceEntry>);
        impl AccessSink for Collect {
            fn access(&mut self, entry: TraceEntry) {
                self.0.push(entry);
            }
        }

        let mut whole = Collect::default();
        let total = compiled.stream(&mut whole).unwrap();
        let mut pieces = Collect::default();
        let mut count = 0;
        // Ragged cuts, including an empty range and one clamped past the end.
        for (lo, hi) in [(0, 2), (2, 2), (2, 3), (3, 9)] {
            count += compiled.stream_block_range(lo, hi, &mut pieces).unwrap();
        }
        assert_eq!(count, total);
        assert_eq!(pieces.0.len(), whole.0.len());
        assert!(pieces
            .0
            .iter()
            .zip(&whole.0)
            .all(|(a, b)| a.address == b.address && a.is_write == b.is_write));

        // Flat innermost loops refuse block sharding (one run group already
        // covers the whole domain).
        let flat = lower("program f { param N = 8; array A[N]; for i in 0..N { A[i] = 1.0; } }");
        assert_eq!(flat.block_trips(), None);
        assert!(matches!(
            flat.stream_block_range(0, 1, &mut Collect::default()),
            Err(MachineError::NotShardable(_))
        ));
    }

    #[test]
    fn negative_stride_accesses_compile_and_execute() {
        let p = parse_program(
            "program rev { param N = 6; array A[N]; array B[N];
               for i in 0..N { B[i] = A[N - 1 - i]; } }",
        )
        .unwrap();
        let compiled = CompiledProgram::lower(&p).unwrap();
        let mut data =
            ProgramData::new_with(&p, |name, i| if name == "A" { i as f64 } else { 0.0 }).unwrap();
        compiled.execute(&mut data).unwrap();
        assert_eq!(data.array("B").unwrap(), &[5.0, 4.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn lowering_rejects_bad_programs_eagerly() {
        let unknown = parse_program(
            "program u { param N = 4; array A[N];
               for i in 0..M { A[i] = 1.0; } }",
        );
        // The parser may already reject unknown bounds; when it does not,
        // lowering must.
        if let Ok(p) = unknown {
            assert!(matches!(
                CompiledProgram::lower(&p),
                Err(MachineError::UnboundVariable(_))
            ));
        }
        let mut p = parse_program(
            "program s { param N = 4; array A[N];
               for i in 0..N { A[i] = 1.0; } }",
        )
        .unwrap();
        if let Node::Loop(l) = &mut p.body[0] {
            l.step = 0;
        }
        assert!(matches!(
            CompiledProgram::lower(&p),
            Err(MachineError::InvalidLoop(_))
        ));
    }

    #[test]
    fn execute_rejects_mismatched_data() {
        let p =
            parse_program("program a { param N = 4; array A[N]; for i in 0..N { A[i] = 1.0; } }")
                .unwrap();
        let q =
            parse_program("program b { param N = 4; array B[N]; for i in 0..N { B[i] = 1.0; } }")
                .unwrap();
        let compiled = CompiledProgram::lower(&p).unwrap();
        let mut data = ProgramData::zeroed(&q).unwrap();
        assert!(compiled.execute(&mut data).is_err());
    }
}
