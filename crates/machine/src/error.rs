//! Errors produced by the execution substrate.

use std::fmt;

/// Convenience alias for machine results.
pub type Result<T> = std::result::Result<T, MachineError>;

/// Errors produced by the interpreter, the trace generator or the cost model.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// An array referenced by the program has no storage.
    UnknownArray(String),
    /// An array extent could not be evaluated under the program parameters.
    UnboundSize(String),
    /// An expression referenced a variable with no binding.
    UnboundVariable(String),
    /// An access evaluated to an index outside the array.
    OutOfBounds {
        /// The accessed array.
        array: String,
        /// The offending index value (-1 for rank mismatches).
        index: i64,
    },
    /// A loop has a non-positive step or non-evaluable bounds.
    InvalidLoop(String),
    /// A shard-ranged stream was requested for a program whose shape the
    /// requested granularity cannot cut (see `shard::ShardPlan`).
    NotShardable(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::UnknownArray(name) => write!(f, "no storage for array `{name}`"),
            MachineError::UnboundSize(name) => {
                write!(f, "extent of array `{name}` cannot be evaluated")
            }
            MachineError::UnboundVariable(name) => write!(f, "unbound variable in `{name}`"),
            MachineError::OutOfBounds { array, index } => {
                write!(f, "index {index} is out of bounds for array `{array}`")
            }
            MachineError::InvalidLoop(iter) => write!(f, "loop over `{iter}` cannot be executed"),
            MachineError::NotShardable(what) => {
                write!(f, "trace cannot be sharded: {what}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MachineError::UnknownArray("A".into())
            .to_string()
            .contains('A'));
        assert!(MachineError::OutOfBounds {
            array: "B".into(),
            index: 9
        }
        .to_string()
        .contains('9'));
    }
}
