//! A set-associative, write-allocate, LRU cache simulator with two levels.
//!
//! The CLOUDSC case study (Table 1) reports absolute numbers of loads and
//! evicts on the L1 cache before and after normalization + fusion; this
//! simulator reproduces those counters from the exact access stream of a
//! program.
//!
//! # Layout and geometry
//!
//! Each level stores its tags in one flat preallocated array (`set_count *
//! assoc` entries, per set in true LRU order with the MRU line at the
//! front) and maps a line to its set by masking with `set_count - 1`. Two
//! invariants make that indexing valid, both established by
//! [`CacheLevel::new`]:
//!
//! * the line size is rounded to the nearest power of two (ties upward), so
//!   the line number is `address >> line_shift`;
//! * the set count is rounded to the *nearest* power of two (ties upward)
//!   of `capacity / line_bytes / assoc`, so the set index is
//!   `line & (set_count - 1)`. When `capacity / line_bytes` is not a
//!   multiple of `assoc` times a power of two, the modeled capacity is
//!   `set_count * assoc * line_bytes`, which can deviate from the configured
//!   capacity by at most a factor of √2 — previously the quotient was
//!   silently truncated, modeling caches up to 2× smaller than configured.
//!
//! # Streaming fast paths
//!
//! [`CacheHierarchy::access`] short-circuits an access to the same line as
//! the immediately preceding access: that line is by construction the MRU
//! entry of its set, so the access is a guaranteed hit and only the hit
//! counter needs to move. [`CacheHierarchy::access_run`] extends this to a
//! whole constant-stride run: for `|stride| <= line_bytes` the per-line
//! access groups are consecutive in the stream, so the number of guaranteed
//! hits is known in closed form (`count - distinct_lines`) and only one real
//! access per distinct line is simulated. [`CacheHierarchy::access_run_group`]
//! extends the idea to the *interleaved* stream of a whole compiled innermost
//! loop (several lockstep runs): the stream is cut into line phases and only
//! each phase's first iteration is simulated, the rest crediting guaranteed
//! hits in closed form. All fast paths produce counters that are
//! *bit-identical* to naively simulating every access (see [`reference`] and
//! the equivalence tests).

use std::collections::BTreeMap;

use crate::config::MachineConfig;
use crate::trace::StrideRun;

/// Counters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of lines loaded into the level (misses of this level).
    pub loads: u64,
    /// Number of dirty or clean lines evicted to make room.
    pub evicts: u64,
    /// Number of accesses that hit in the level.
    pub hits: u64,
    /// Number of accesses that missed in the level.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no accesses were simulated.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another replica's counters into this one — the reduction
    /// of the sharded simulation driver (`shard::simulate_cache_sharded`).
    /// Field-wise `u64` addition, so the merged result is independent of
    /// the order shards are folded in: any worker schedule produces
    /// bit-identical totals.
    pub fn merge(&mut self, other: &CacheStats) {
        self.loads += other.loads;
        self.evicts += other.evicts;
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Sentinel marking an unused way. Valid only because a real line number
/// would require an address of at least `u64::MAX * line_bytes`.
const EMPTY: u64 = u64::MAX;

/// Rounds to the nearest power of two, ties toward the larger one. Shared
/// with the analytic tier ([`crate::analytic`]), which must model the same
/// rounded geometry the simulator actually uses.
pub(crate) fn nearest_pow2(n: u64) -> u64 {
    let n = n.max(1);
    if n.is_power_of_two() {
        return n;
    }
    let above = n.next_power_of_two();
    let below = above / 2;
    if n - below < above - n {
        below
    } else {
        above
    }
}

/// One level of a set-associative LRU cache: per set, the line tags in true
/// LRU order (front = MRU) inside one flat preallocated array — the
/// reference algorithm's recency list without its per-set `Vec`s. Hits scan
/// tags only and rotate the hit line to the front; the victim of a miss is
/// always the back of the set ([`EMPTY`] ways sink there by construction,
/// so "first empty way, else LRU" needs no separate scan).
#[derive(Debug, Clone)]
struct CacheLevel {
    /// `set_count * assoc` line numbers in per-set LRU order, [`EMPTY`]
    /// when the way is unused.
    tags: Box<[u64]>,
    /// Number of full lookups performed (the fast paths' probe count; the
    /// run-compression tests pin their closed-form crediting against it).
    probes: u64,
    assoc: usize,
    /// `log2(line_bytes)`.
    line_shift: u32,
    /// `set_count - 1`.
    set_mask: u64,
    stats: CacheStats,
}

impl CacheLevel {
    fn new(capacity: usize, assoc: usize, line_bytes: usize) -> Self {
        let assoc = assoc.max(1);
        let line_bytes = nearest_pow2(line_bytes.max(1) as u64);
        let lines = ((capacity as u64) / line_bytes).max(assoc as u64);
        let set_count = nearest_pow2(lines / assoc as u64);
        CacheLevel {
            tags: vec![EMPTY; (set_count as usize) * assoc].into_boxed_slice(),
            probes: 0,
            assoc,
            line_shift: line_bytes.trailing_zeros(),
            set_mask: set_count - 1,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn line_of(&self, address: u64) -> u64 {
        address >> self.line_shift
    }

    /// Accesses one line; returns the hit flag and the tag the access
    /// displaced ([`EMPTY`] when no line was evicted).
    #[inline]
    fn access_line_tracked(&mut self, line: u64) -> (bool, u64) {
        let base = ((line & self.set_mask) as usize) * self.assoc;
        self.probes += 1;
        let set = &mut self.tags[base..base + self.assoc];
        for w in 0..set.len() {
            if set[w] == line {
                // Rotate the hit line to the MRU front.
                set.copy_within(0..w, 1);
                set[0] = line;
                self.stats.hits += 1;
                return (true, EMPTY);
            }
        }
        self.stats.misses += 1;
        self.stats.loads += 1;
        let evicted = set[set.len() - 1];
        if evicted != EMPTY {
            self.stats.evicts += 1;
        }
        set.copy_within(0..set.len() - 1, 1);
        set[0] = line;
        (false, evicted)
    }

    /// Accesses one line; returns true on hit.
    #[inline]
    fn access_line(&mut self, line: u64) -> bool {
        self.access_line_tracked(line).0
    }

    /// Accesses the byte address; returns true on hit. The hierarchy's hot
    /// paths pass lines directly; this remains for the level-granularity
    /// tests.
    #[cfg(test)]
    fn access(&mut self, address: u64) -> bool {
        self.access_line(self.line_of(address))
    }
}

/// A two-level cache hierarchy fed with byte addresses.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: CacheLevel,
    l2: CacheLevel,
    accesses: u64,
    /// L1 line number of the previous access; a repeat is a guaranteed hit.
    last_line: u64,
    /// Scratch of the run-group fast path (one lane per run), kept on the
    /// hierarchy so per-innermost-loop calls allocate nothing.
    group_lanes: Vec<GroupLane>,
    /// Scratch for the L1 tags evicted while simulating one phase head.
    group_evicted: Vec<u64>,
}

/// Per-run state of the run-group fast path. Everything advances
/// incrementally: a sub-line stride can never skip a line, so crossings move
/// `line` by `dir` (±1) and the crossing distances are either a closed-form
/// period (stride divides the line size) or a 32-bit division over the
/// direction-relative entry offset — no per-phase multiply or shift.
#[derive(Debug, Clone)]
struct GroupLane {
    /// The line the lane currently walks.
    line: u64,
    /// The iteration at which the lane leaves `line`.
    next: u64,
    /// Line increment per crossing: ±1 for sub-line strides, 0 for stride
    /// zero (super-line strides recompute from `base` instead).
    dir: i64,
    /// Byte offset of the current line's first access from the entry edge
    /// in walk direction (maintained only when `period` is 0).
    o: u32,
    /// `|stride|`, consulted only when below the line size.
    s_abs: u32,
    /// Closed-form iterations per line once past the (possibly partial)
    /// first line — `line_bytes / |stride|` when that divides evenly, `0`
    /// when the crossing distance must be divided out per crossing.
    period: u64,
    base: i64,
    stride: i64,
    /// Middle member of a stagger cluster: its line crossings never end a
    /// phase (they move onto a line the cluster leader already keeps
    /// resident), so its `line`/`next` are recomputed lazily from `base`
    /// whenever a phase head finds them stale.
    elided: bool,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by a [`MachineConfig`].
    pub fn from_machine(machine: &MachineConfig) -> Self {
        let hierarchy = CacheHierarchy {
            l1: CacheLevel::new(machine.l1_bytes, machine.l1_assoc, machine.line_bytes),
            l2: CacheLevel::new(machine.l2_bytes, machine.l2_assoc, machine.line_bytes),
            accesses: 0,
            last_line: EMPTY,
            group_lanes: Vec::new(),
            group_evicted: Vec::new(),
        };
        // The run fast path reconstructs line-aligned addresses; both levels
        // sharing one line size keeps those addresses on the original lines.
        debug_assert_eq!(hierarchy.l1.line_shift, hierarchy.l2.line_shift);
        hierarchy
    }

    /// Simulates one access to the given byte address (reads and writes are
    /// treated alike: write-allocate).
    #[inline]
    pub fn access(&mut self, address: u64) {
        self.accesses += 1;
        self.access_counted(address);
    }

    /// The access path without the total-access bookkeeping (used by the run
    /// fast path, which counts accesses in bulk).
    #[inline]
    fn access_counted(&mut self, address: u64) {
        self.access_counted_tracked(address);
    }

    /// Like [`access_counted`](Self::access_counted), but reports the L1 tag
    /// the access displaced ([`EMPTY`] when none) — the run-group fast path
    /// uses it to detect one of its live lines being evicted.
    #[inline]
    fn access_counted_tracked(&mut self, address: u64) -> u64 {
        self.access_counted_at_line(address, self.l1.line_of(address))
    }

    /// The tracked access path with the L1 line already computed (the
    /// run-group phase loop derives it for its own bookkeeping anyway).
    /// Both levels share one line size, so the line stands in for the
    /// address at L2 as well.
    #[inline]
    fn access_counted_at_line(&mut self, address: u64, line: u64) -> u64 {
        debug_assert_eq!(self.l1.line_of(address), line);
        if line == self.last_line {
            // The previous access touched this exact line, so it is the MRU
            // entry of its set: a guaranteed hit whose recency update is a
            // no-op. Identical counters to the full lookup.
            self.l1.stats.hits += 1;
            return EMPTY;
        }
        self.last_line = line;
        let (hit, evicted) = self.l1.access_line_tracked(line);
        if !hit {
            self.l2.access_line(line);
        }
        evicted
    }

    /// Simulates a batch of accesses; equivalent to calling
    /// [`access`](Self::access) on every element in order.
    pub fn access_batch(&mut self, addresses: &[u64]) {
        self.accesses += addresses.len() as u64;
        for &address in addresses {
            self.access_counted(address);
        }
    }

    /// Simulates `count` accesses at `start, start + stride, …` — the access
    /// stream of one array reference inside a constant-stride innermost loop.
    ///
    /// For `|stride| <= line_bytes` the per-line groups of the run are
    /// consecutive, so all but the first access to each line are guaranteed
    /// hits; the hit count is added in closed form and only one access per
    /// distinct line is simulated. Counters are bit-identical to calling
    /// [`access`](Self::access) `count` times.
    pub fn access_run(&mut self, start: u64, stride: i64, count: u64) {
        if count == 0 {
            return;
        }
        let line_bytes = 1u64 << self.l1.line_shift;
        let end = start as i64 + stride * (count as i64 - 1);
        if stride.unsigned_abs() > line_bytes || end < 0 {
            // Super-line strides land every access on a fresh line (nothing
            // to collapse); runs that would walk below address zero wrap the
            // same way the per-access path does.
            self.accesses += count;
            if end >= 0 && stride % line_bytes as i64 == 0 {
                // Line-multiple stride (a column walk): the line index
                // advances by a constant |dline| >= 2 per access, so after
                // the first access — which may still re-touch the previous
                // stream's line — the per-access line recomputation and the
                // MRU short-circuit can never fire. Probing the levels
                // directly with the stepped line is counter-identical.
                let dline = stride >> self.l1.line_shift;
                let mut line = self.l1.line_of(start);
                self.access_counted(start);
                for _ in 1..count {
                    line = line.wrapping_add_signed(dline);
                    let (hit, _) = self.l1.access_line_tracked(line);
                    if !hit {
                        self.l2.access_line(line);
                    }
                }
                self.last_line = line;
                return;
            }
            let mut address = start as i64;
            for _ in 0..count {
                self.access_counted(address as u64);
                address += stride;
            }
            return;
        }
        self.accesses += count;
        let first = self.l1.line_of(start);
        let last = self.l1.line_of(end as u64);
        let distinct = first.abs_diff(last) + 1;
        self.l1.stats.hits += count - distinct;
        let shift = self.l1.line_shift;
        if last >= first {
            for line in first..=last {
                self.access_counted(line << shift);
            }
        } else {
            for line in (last..=first).rev() {
                self.access_counted(line << shift);
            }
        }
    }

    /// Simulates the interleaved access stream of a compiled innermost loop:
    /// iteration `i` touches `runs[0].base + i·stride`, then `runs[1]`, … —
    /// the lockstep advance of every access plan of the loop body. All runs
    /// of a group share one trip count.
    ///
    /// The stream is cut into *line phases*: maximal iteration ranges in
    /// which no run crosses a cache-line boundary. Only a phase's first
    /// iteration is simulated access by access — which also refreshes the
    /// LRU recency of every live line, in true stream order — leaving every
    /// live line resident, so each remaining iteration of the phase is a
    /// guaranteed L1 hit per run, credited in closed form. The one exception
    /// is an associativity conflict: when simulating the phase head evicts
    /// one of the phase's own lines, the rest of the phase falls back to
    /// per-access simulation.
    ///
    /// Two refinements bound the bookkeeping: groups in which *every* lane
    /// has a super-line stride (no phase can span two iterations) are
    /// expanded per access up front, and stagger clusters — contiguous
    /// same-array lanes one sub-line stride apart within a line span, the
    /// shape of a stencil body — stop breaking phases at their middle
    /// members' line crossings, which by construction land on a line the
    /// cluster already holds resident. Counters remain bit-identical to
    /// expanding the group through [`access`](Self::access) in interleaved
    /// order, as the differential suites verify.
    pub fn access_run_group(&mut self, runs: &[StrideRun]) {
        match runs {
            [] => return,
            [r] => return self.access_run(r.base, r.stride, r.count),
            _ => {}
        }
        let count = runs[0].count;
        if runs.iter().any(|r| r.count != count) {
            // Degenerate group: the runs disagree on the trip count (a
            // malformed plan, or zero-trip members mixed with live ones).
            // Interleave them per-access honoring each run's own count —
            // trusting `runs[0]` would drop or invent accesses.
            let longest = runs.iter().map(|r| r.count).max().unwrap_or(0);
            let total = runs.iter().map(|r| r.count).sum::<u64>();
            telemetry::counter("machine.cache.group_ragged_accesses", total);
            self.accesses += total;
            for i in 0..longest as i64 {
                for r in runs {
                    if (i as u64) < r.count {
                        self.access_counted((r.base as i64 + r.stride * i) as u64);
                    }
                }
            }
            return;
        }
        if count == 0 {
            return;
        }
        self.accesses += count * runs.len() as u64;
        telemetry::counter("machine.cache.group_accesses", count * runs.len() as u64);
        if runs
            .iter()
            .any(|r| (r.base as i64) + r.stride * (count as i64 - 1) < 0)
        {
            // A run walking below address zero wraps exactly the way the
            // expanded per-access stream does.
            for i in 0..count as i64 {
                for r in runs {
                    self.access_counted((r.base as i64 + r.stride * i) as u64);
                }
            }
            return;
        }
        let shift = self.l1.line_shift;
        let line_bytes = 1u64 << shift;
        debug_assert!(shift < 32, "line sizes are small powers of two");
        let lb = line_bytes as u32;
        if runs.iter().all(|r| r.stride.unsigned_abs() >= line_bytes) {
            // Every lane lands on a fresh line every iteration (strided
            // column walks): no phase can ever exceed one iteration, so the
            // lane bookkeeping is pure overhead. Expand per access up front.
            telemetry::counter(
                "machine.cache.group_superline_accesses",
                count * runs.len() as u64,
            );
            for i in 0..count as i64 {
                for r in runs {
                    self.access_counted((r.base as i64 + r.stride * i) as u64);
                }
            }
            return;
        }
        let mut lanes = std::mem::take(&mut self.group_lanes);
        let mut evictions = std::mem::take(&mut self.group_evicted);
        lanes.clear();
        for r in runs {
            let s_abs = r.stride.unsigned_abs();
            let addr = r.base;
            let line = addr >> shift;
            // The first access's offset from the line edge the walk enters
            // through (start edge for positive strides, end edge for
            // negative), so one formula covers both directions.
            let o_fwd = (addr & (line_bytes - 1)) as u32;
            let o = if r.stride >= 0 { o_fwd } else { lb - 1 - o_fwd };
            lanes.push(GroupLane {
                // The setup "crossing" at i = 0 adds `dir` back.
                line: line.wrapping_sub_signed(r.stride.signum()),
                next: 0,
                dir: r.stride.signum(),
                o,
                s_abs: s_abs.min(u64::from(u32::MAX)) as u32,
                // Only powers of two divide the (power-of-two) line size, so
                // the closed-form period needs no division.
                period: if s_abs != 0 && s_abs < line_bytes && s_abs.is_power_of_two() {
                    line_bytes >> s_abs.trailing_zeros()
                } else {
                    0
                },
                base: r.base as i64,
                stride: r.stride,
                elided: false,
            });
        }
        // Stagger clusters: maximal blocks of lanes, contiguous in run
        // order, on one array with one nonzero sub-line stride and all
        // bases within one line span (`A[i-1] / A[i] / A[i+1]`). Such a
        // block occupies at most two adjacent cache lines at any iteration,
        // and a middle member only ever crosses onto the line the cluster
        // leader already keeps resident, so middle crossings cannot miss
        // and need not end a phase. Only the leader (front-most in walk
        // direction, first to enter a new line) and the rear (last off the
        // old line, whose crossing freezes its recency) keep bounding
        // `phase_end`; the rest are elided. Adjacent lines must map to
        // different sets for the recency argument to hold, hence the
        // `set_mask > 0` gate; run-order contiguity keeps every external
        // lane's stream position outside the block, so which member last
        // touched a cluster line never reorders it against outsiders.
        if self.l1.set_mask > 0 {
            let mut j = 0;
            while j < runs.len() {
                let stride = runs[j].stride;
                if stride == 0 || stride.unsigned_abs() >= line_bytes {
                    j += 1;
                    continue;
                }
                let (mut lo, mut hi) = (runs[j].base, runs[j].base);
                let mut k = j + 1;
                while k < runs.len() && runs[k].array == runs[j].array && runs[k].stride == stride {
                    let nlo = lo.min(runs[k].base);
                    let nhi = hi.max(runs[k].base);
                    if nhi - nlo >= line_bytes {
                        break;
                    }
                    (lo, hi) = (nlo, nhi);
                    k += 1;
                }
                if k - j >= 3 {
                    let (lead, rear) = if stride > 0 { (hi, lo) } else { (lo, hi) };
                    let (mut lead_kept, mut rear_kept) = (false, false);
                    let mut elided = 0u64;
                    for lane in j..k {
                        let base = runs[lane].base;
                        if !lead_kept && base == lead {
                            lead_kept = true;
                        } else if !rear_kept && base == rear {
                            rear_kept = true;
                        } else {
                            lanes[lane].elided = true;
                            elided += 1;
                        }
                    }
                    telemetry::counter("machine.cache.group_stagger_elided", elided * count);
                }
                j = k.max(j + 1);
            }
        }
        let mut i = 0u64;
        while i < count {
            // One fused pass per phase: simulate the phase head (one full
            // iteration, in stream order) while computing how long no lane
            // leaves its current line (`phase_end`). Evicted tags are
            // checked against the live lines only after the pass, when
            // every lane's line is known.
            let mut phase_end = count;
            evictions.clear();
            for lane in &mut lanes {
                if lane.elided {
                    // Elided cluster middles may have crossed several lines
                    // since the last head (their crossings never end a
                    // phase): catch up from the absolute address. Their
                    // `next` never bounds `phase_end`.
                    if lane.next <= i {
                        let addr = (lane.base + lane.stride * i as i64) as u64;
                        lane.line = addr >> shift;
                        let o_fwd = (addr & (line_bytes - 1)) as u32;
                        let o = if lane.stride >= 0 {
                            o_fwd
                        } else {
                            lb - 1 - o_fwd
                        };
                        lane.next = i + u64::from((lb - 1 - o) / lane.s_abs + 1);
                    }
                    let evicted = self.access_counted_at_line(lane.line << shift, lane.line);
                    if evicted != EMPTY {
                        evictions.push(evicted);
                    }
                    continue;
                }
                if lane.next == i {
                    if lane.stride == 0 {
                        lane.line = (lane.base as u64) >> shift;
                        lane.next = count;
                    } else if u64::from(lane.s_abs) >= line_bytes {
                        // Super-line strides can skip lines: recompute.
                        lane.line = ((lane.base + lane.stride * i as i64) as u64) >> shift;
                        lane.next = i + 1;
                    } else {
                        // A sub-line stride enters the adjacent line; the
                        // crossing distance is the closed-form period past
                        // the (possibly partial) first line, or a 32-bit
                        // division over the entry offset.
                        lane.line = lane.line.wrapping_add_signed(lane.dir);
                        lane.next = if lane.period != 0 && i != 0 {
                            i + lane.period
                        } else {
                            let iters = (lb - 1 - lane.o) / lane.s_abs + 1;
                            lane.o = lane.o + lane.s_abs * iters - lb;
                            i + u64::from(iters)
                        };
                    }
                }
                if lane.next < phase_end {
                    phase_end = lane.next;
                }
                // Any address on the line is equivalent for the hierarchy
                // (both levels share one line size).
                let evicted = self.access_counted_at_line(lane.line << shift, lane.line);
                if evicted != EMPTY {
                    evictions.push(evicted);
                }
            }
            let live_evicted = !evictions.is_empty()
                && evictions
                    .iter()
                    .any(|tag| lanes.iter().any(|lane| lane.line == *tag));
            i += 1;
            if i >= phase_end {
                continue;
            }
            if live_evicted {
                // An associativity conflict displaced one of the phase's own
                // lines: the remaining iterations are not all-hit, simulate
                // them one access at a time.
                telemetry::counter(
                    "machine.cache.group_conflict_accesses",
                    (phase_end - i) * runs.len() as u64,
                );
                while i < phase_end {
                    for r in runs {
                        self.access_counted((r.base as i64 + r.stride * i as i64) as u64);
                    }
                    i += 1;
                }
            } else {
                // Every live line is resident and hits evict nothing: the
                // rest of the phase hits in L1, credited in closed form.
                self.l1.stats.hits += (phase_end - i) * runs.len() as u64;
                i = phase_end;
            }
        }
        self.group_lanes = lanes;
        self.group_evicted = evictions;
    }

    /// Total number of simulated accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of real L1 lookups performed. The run-compressed fast paths
    /// credit guaranteed hits in closed form, so `probes() / accesses()` is
    /// the fraction of the stream that was actually simulated per access.
    pub fn probes(&self) -> u64 {
        self.l1.probes
    }

    /// Counters of the L1 cache.
    pub fn l1(&self) -> CacheStats {
        self.l1.stats
    }

    /// Counters of the L2 cache.
    pub fn l2(&self) -> CacheStats {
        self.l2.stats
    }
}

/// The pre-refactor simulator: per-set `Vec<u64>` in LRU order, one full
/// lookup per access. Kept as the ground truth for equivalence tests and as
/// the baseline the criterion benches measure the streaming simulator
/// against. Uses the same (rounded) geometry as [`CacheHierarchy`].
pub mod reference {
    use super::{nearest_pow2, CacheStats};
    use crate::config::MachineConfig;

    /// One level of the reference simulator.
    #[derive(Debug, Clone)]
    struct ReferenceLevel {
        sets: Vec<Vec<u64>>, // per set: line tags in LRU order (front = MRU)
        assoc: usize,
        line_bytes: u64,
        set_count: u64,
        stats: CacheStats,
    }

    impl ReferenceLevel {
        fn new(capacity: usize, assoc: usize, line_bytes: usize) -> Self {
            let assoc = assoc.max(1);
            let line_bytes = nearest_pow2(line_bytes.max(1) as u64);
            let lines = ((capacity as u64) / line_bytes).max(assoc as u64);
            let set_count = nearest_pow2(lines / assoc as u64);
            ReferenceLevel {
                sets: vec![Vec::with_capacity(assoc); set_count as usize],
                assoc,
                line_bytes,
                set_count,
                stats: CacheStats::default(),
            }
        }

        fn access(&mut self, address: u64) -> bool {
            let line = address / self.line_bytes;
            let set_idx = (line % self.set_count) as usize;
            let set = &mut self.sets[set_idx];
            if let Some(pos) = set.iter().position(|&t| t == line) {
                set.remove(pos);
                set.insert(0, line);
                self.stats.hits += 1;
                return true;
            }
            self.stats.misses += 1;
            self.stats.loads += 1;
            if set.len() >= self.assoc {
                set.pop();
                self.stats.evicts += 1;
            }
            set.insert(0, line);
            false
        }
    }

    /// The naive two-level hierarchy the streaming simulator must match
    /// counter-for-counter.
    #[derive(Debug, Clone)]
    pub struct ReferenceCacheHierarchy {
        l1: ReferenceLevel,
        l2: ReferenceLevel,
        accesses: u64,
    }

    impl ReferenceCacheHierarchy {
        /// Builds the hierarchy described by a [`MachineConfig`].
        pub fn from_machine(machine: &MachineConfig) -> Self {
            ReferenceCacheHierarchy {
                l1: ReferenceLevel::new(machine.l1_bytes, machine.l1_assoc, machine.line_bytes),
                l2: ReferenceLevel::new(machine.l2_bytes, machine.l2_assoc, machine.line_bytes),
                accesses: 0,
            }
        }

        /// Simulates one access.
        pub fn access(&mut self, address: u64) {
            self.accesses += 1;
            if !self.l1.access(address) {
                self.l2.access(address);
            }
        }

        /// Total number of simulated accesses.
        pub fn accesses(&self) -> u64 {
            self.accesses
        }

        /// Counters of the L1 cache.
        pub fn l1(&self) -> CacheStats {
            self.l1.stats
        }

        /// Counters of the L2 cache.
        pub fn l2(&self) -> CacheStats {
            self.l2.stats
        }
    }
}

/// Assigns non-overlapping base addresses to the arrays of a program so that
/// linear offsets can be turned into byte addresses.
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    bases: BTreeMap<String, u64>,
}

impl AddressMap {
    /// Lays out the arrays of a program consecutively, 4 KiB aligned.
    pub fn for_program(program: &loop_ir::Program) -> Self {
        let mut bases = BTreeMap::new();
        let mut cursor: u64 = 0x1000;
        for (name, array) in &program.arrays {
            let bytes = array.size_bytes(&program.params).unwrap_or(0).max(0) as u64;
            bases.insert(name.to_string(), cursor);
            cursor += (bytes + 0xFFF) & !0xFFF;
        }
        AddressMap { bases }
    }

    /// The byte address of element `offset` (in elements) of the array.
    pub fn address(&self, array: &str, offset: i64, elem_size: usize) -> Option<u64> {
        self.bases
            .get(array)
            .map(|base| base + (offset.max(0) as u64) * elem_size as u64)
    }

    /// The base byte address of an array, if it is laid out.
    pub fn base(&self, array: &str) -> Option<u64> {
        self.bases.get(array).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceCacheHierarchy;
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::from_machine(&MachineConfig::tiny_for_tests())
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        c.access(0);
        c.access(8);
        c.access(16);
        assert_eq!(c.l1().misses, 1, "same line");
        assert_eq!(c.l1().hits, 2);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn streaming_misses_once_per_line() {
        let mut c = tiny();
        for i in 0..1024u64 {
            c.access(i * 8);
        }
        // 1024 doubles = 8 KiB = 128 lines.
        assert_eq!(c.l1().loads, 128);
        assert_eq!(c.l1().hits, 1024 - 128);
    }

    #[test]
    fn capacity_evictions_occur() {
        let machine = MachineConfig::tiny_for_tests(); // 1 KiB L1 = 16 lines
        let mut c = CacheHierarchy::from_machine(&machine);
        // touch 64 distinct lines twice; the second pass misses again in L1
        // because the working set (4 KiB) exceeds the 1 KiB L1.
        for _ in 0..2 {
            for i in 0..64u64 {
                c.access(i * 64);
            }
        }
        assert!(c.l1().evicts > 0);
        assert!(c.l1().misses > 64);
        // but the 8 KiB L2 holds the working set: second-pass L2 hits.
        assert!(c.l2().hits > 0);
    }

    #[test]
    fn working_set_within_l1_has_no_evicts_on_reuse() {
        let machine = MachineConfig::tiny_for_tests();
        let mut c = CacheHierarchy::from_machine(&machine);
        for _ in 0..4 {
            for i in 0..8u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.l1().loads, 8);
        assert_eq!(c.l1().evicts, 0);
        assert!(c.l1().hit_rate() > 0.7);
    }

    #[test]
    fn lru_replacement_order() {
        // Direct construction: 4 lines capacity, assoc 4, one set.
        let mut level = CacheLevel::new(256, 4, 64);
        assert_eq!(level.set_mask, 0);
        for addr in [0u64, 64, 128, 192] {
            level.access(addr);
        }
        // Touch line 0 to make it MRU, then insert a new line: line 64 (LRU)
        // must be evicted, so accessing 0 still hits but 64 misses.
        level.access(0);
        level.access(256);
        assert!(level.access(0));
        assert!(!level.access(64));
    }

    #[test]
    fn geometry_rounds_to_nearest_power_of_two() {
        assert_eq!(nearest_pow2(1), 1);
        assert_eq!(nearest_pow2(12), 16); // equidistant from 8 and 16: ties up
        assert_eq!(nearest_pow2(11), 8);
        assert_eq!(nearest_pow2(13), 16);
        assert_eq!(nearest_pow2(64), 64);
        // A 96-line capacity at assoc 4 is 24 ideal sets; the nearest valid
        // power of two is 32 sets, not the truncated 16 the old geometry
        // produced (which modeled a 2/3-sized cache).
        let level = CacheLevel::new(96 * 64, 4, 64);
        assert_eq!(level.set_mask + 1, 32);
    }

    #[test]
    fn address_map_keeps_arrays_disjoint() {
        use loop_ir::prelude::*;
        let p = Program::builder("two")
            .param("N", 100)
            .array("A", &["N"])
            .array("B", &["N"])
            .build()
            .unwrap();
        let map = AddressMap::for_program(&p);
        let a_last = map.address("A", 99, 8).unwrap();
        let b_first = map.address("B", 0, 8).unwrap();
        assert!(a_last < b_first);
        assert!(map.address("Z", 0, 8).is_none());
        assert_eq!(map.base("A"), Some(0x1000));
    }

    #[test]
    fn hit_rate_of_empty_stats_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    fn assert_same_stats(fast: &CacheHierarchy, slow: &ReferenceCacheHierarchy, label: &str) {
        assert_eq!(fast.accesses(), slow.accesses(), "{label}: access counts");
        assert_eq!(fast.l1(), slow.l1(), "{label}: L1 counters");
        assert_eq!(fast.l2(), slow.l2(), "{label}: L2 counters");
    }

    #[test]
    fn flat_simulator_matches_reference_on_random_streams() {
        let machine = MachineConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(0xCAC4E);
        for round in 0..8 {
            let mut fast = CacheHierarchy::from_machine(&machine);
            let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
            for _ in 0..20_000 {
                // Mix of hot lines (set conflicts) and a long tail.
                let address = if rng.gen_bool(0.5) {
                    rng.gen_range(0..4096u64)
                } else {
                    rng.gen_range(0..1 << 20)
                };
                fast.access(address);
                slow.access(address);
            }
            assert_same_stats(&fast, &slow, &format!("random round {round}"));
        }
    }

    #[test]
    fn batch_matches_reference() {
        let machine = MachineConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(7);
        let addresses: Vec<u64> = (0..50_000).map(|_| rng.gen_range(0..1 << 18)).collect();
        let mut fast = CacheHierarchy::from_machine(&machine);
        let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
        fast.access_batch(&addresses);
        for &a in &addresses {
            slow.access(a);
        }
        assert_same_stats(&fast, &slow, "batch");
    }

    #[test]
    fn strided_runs_match_reference_exactly() {
        let machine = MachineConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(0x57E1DE);
        // Strides spanning sub-line, exactly-line, super-line, zero and
        // negative; starts unaligned on purpose.
        for &stride in &[0i64, 4, 8, 24, 63, 64, 65, 128, 1000, -8, -64, -24] {
            for _ in 0..4 {
                let count = rng.gen_range(1..800u64);
                let start = rng.gen_range(100_000..200_000u64);
                let mut fast = CacheHierarchy::from_machine(&machine);
                let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
                // Pre-warm both with a shared random prefix so runs start
                // from a non-trivial cache state.
                for _ in 0..500 {
                    let a = rng.gen_range(0..1 << 18);
                    fast.access(a);
                    slow.access(a);
                }
                fast.access_run(start, stride, count);
                let mut address = start as i64;
                for _ in 0..count {
                    slow.access(address as u64);
                    address += stride;
                }
                assert_same_stats(&fast, &slow, &format!("stride {stride} count {count}"));
            }
        }
    }

    /// Expands a lockstep run group to the interleaved per-access stream on
    /// the reference simulator.
    fn expand_group_on(slow: &mut ReferenceCacheHierarchy, runs: &[StrideRun]) {
        let count = runs.first().map(|r| r.count).unwrap_or(0);
        for i in 0..count as i64 {
            for r in runs {
                slow.access((r.base as i64 + r.stride * i) as u64);
            }
        }
    }

    fn group_run(base: u64, stride: i64, count: u64) -> StrideRun {
        StrideRun {
            base,
            stride,
            count,
            array: 0,
            is_write: false,
        }
    }

    #[test]
    fn run_groups_match_reference_across_stride_mixes() {
        let machine = MachineConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(0x6E0);
        // Groups mixing unit, zero, negative, sub-line and super-line
        // strides, with staggered unaligned bases.
        let stride_menu = [0i64, 8, 8, 8, -8, 16, 24, 63, 64, 65, 128, -64];
        for round in 0..24 {
            let k = rng.gen_range(2..7usize);
            let count = rng.gen_range(1..600u64);
            let runs: Vec<StrideRun> = (0..k)
                .map(|_| {
                    let stride = stride_menu[rng.gen_range(0..stride_menu.len())];
                    let base = rng.gen_range(100_000..180_000u64);
                    group_run(base, stride, count)
                })
                .collect();
            let mut fast = CacheHierarchy::from_machine(&machine);
            let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
            // Shared random prefix: the group starts from non-trivial state.
            for _ in 0..400 {
                let a = rng.gen_range(0..1 << 18);
                fast.access(a);
                slow.access(a);
            }
            fast.access_run_group(&runs);
            expand_group_on(&mut slow, &runs);
            // And a shared random suffix: the state the group leaves behind
            // (stamp order, last-line shortcut) must be equivalent too.
            for _ in 0..400 {
                let a = rng.gen_range(0..1 << 18);
                fast.access(a);
                slow.access(a);
            }
            assert_same_stats(&fast, &slow, &format!("group round {round}"));
        }
    }

    #[test]
    fn conflicting_run_groups_fall_back_bit_identically() {
        // tiny_for_tests: 1 KiB L1, assoc 4, 64 B lines -> 4 sets. Five
        // streams whose bases collide in one set exceed the associativity,
        // so every phase head evicts a live line and the group must take the
        // per-access fallback — with identical counters.
        let machine = MachineConfig::tiny_for_tests();
        let count = 512;
        let runs: Vec<StrideRun> = (0..5)
            .map(|j| group_run(0x1000 * (j + 1), 8, count))
            .collect();
        let mut fast = CacheHierarchy::from_machine(&machine);
        let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
        fast.access_run_group(&runs);
        expand_group_on(&mut slow, &runs);
        assert_same_stats(&fast, &slow, "associativity conflict");
        assert!(
            fast.l1().evicts > 0,
            "the conflict case must actually evict"
        );
    }

    #[test]
    fn run_groups_handle_degenerate_shapes() {
        let machine = MachineConfig::tiny_for_tests();
        let mut fast = CacheHierarchy::from_machine(&machine);
        let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
        // Empty group and zero-trip group: no accesses at all.
        fast.access_run_group(&[]);
        fast.access_run_group(&[group_run(0, 8, 0), group_run(64, 8, 0)]);
        assert_eq!(fast.accesses(), 0);
        // Single-run group: delegates to the run fast path.
        fast.access_run_group(&[group_run(4096, 8, 100)]);
        for i in 0..100 {
            slow.access(4096 + 8 * i);
        }
        assert_same_stats(&fast, &slow, "single-run group");
        // A run walking below address zero wraps like the expanded stream.
        let wrap = [group_run(64, -128, 4), group_run(4096, 8, 4)];
        fast.access_run_group(&wrap);
        expand_group_on(&mut slow, &wrap);
        assert_same_stats(&fast, &slow, "negative wrap");
    }

    /// Expands a group honoring each run's *own* trip count (ragged groups
    /// interleave only the runs still live at iteration `i`).
    fn expand_ragged_group_on(slow: &mut ReferenceCacheHierarchy, runs: &[StrideRun]) {
        let longest = runs.iter().map(|r| r.count).max().unwrap_or(0);
        for i in 0..longest as i64 {
            for r in runs {
                if (i as u64) < r.count {
                    slow.access((r.base as i64 + r.stride * i) as u64);
                }
            }
        }
    }

    #[test]
    fn ragged_run_groups_fall_back_instead_of_panicking() {
        // Runs disagreeing on the trip count used to trip a debug assertion
        // (and silently follow runs[0] in release builds); now they take a
        // per-access fallback with counters matching the ragged expansion.
        let machine = MachineConfig::tiny_for_tests();
        let groups: Vec<Vec<StrideRun>> = vec![
            vec![group_run(0x1000, 8, 100), group_run(0x2000, 8, 60)],
            // A zero-trip member mixed with live ones.
            vec![
                group_run(0x1000, 8, 50),
                group_run(0x2000, 8, 0),
                group_run(0x3000, -8, 20),
            ],
            // Zero strides only, unequal counts.
            vec![group_run(0x1000, 0, 7), group_run(0x2000, 0, 3)],
            // Line-sized, zero and super-line strides together.
            vec![
                group_run(0x1000, 64, 33),
                group_run(0x2040, 0, 12),
                group_run(0x5000, 128, 5),
            ],
            // runs[0] is the *short* one: trusting it would drop accesses.
            vec![group_run(0x1000, 8, 1), group_run(0x2000, 8, 400)],
        ];
        for (j, runs) in groups.iter().enumerate() {
            let mut fast = CacheHierarchy::from_machine(&machine);
            let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
            fast.access_run_group(runs);
            expand_ragged_group_on(&mut slow, runs);
            assert_same_stats(&fast, &slow, &format!("ragged group {j}"));
        }
    }

    #[test]
    fn zero_stride_and_zero_count_groups_are_safe() {
        let machine = MachineConfig::tiny_for_tests();
        // All-zero-trip ragged group: a no-op, not a division or underflow.
        let mut fast = CacheHierarchy::from_machine(&machine);
        fast.access_run_group(&[
            group_run(0, 8, 0),
            group_run(64, -8, 0),
            group_run(128, 0, 0),
        ]);
        assert_eq!(fast.accesses(), 0);
        // Lockstep all-zero-stride group: every iteration re-touches the
        // same lines; the phase math must not divide by the zero stride.
        let runs = vec![group_run(0x1000, 0, 256), group_run(0x1044, 0, 256)];
        let mut fast = CacheHierarchy::from_machine(&machine);
        let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
        fast.access_run_group(&runs);
        expand_group_on(&mut slow, &runs);
        assert_same_stats(&fast, &slow, "zero-stride lockstep");
    }

    #[test]
    fn aligned_unit_stride_group_simulates_one_iteration_per_line_phase() {
        // Three aligned unit-stride streams over 1024 iterations touch
        // 3 * 128 lines; everything else must be credited as closed-form
        // hits without probes. The observable: counters match the reference
        // while the number of real probes stays near the line count.
        let machine = MachineConfig::tiny_for_tests();
        let runs: Vec<StrideRun> = (0..3)
            .map(|j| group_run(0x40000 * (j + 1), 8, 1024))
            .collect();
        let mut fast = CacheHierarchy::from_machine(&machine);
        let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
        fast.access_run_group(&runs);
        expand_group_on(&mut slow, &runs);
        assert_same_stats(&fast, &slow, "aligned unit stride");
        assert_eq!(fast.accesses(), 3 * 1024);
        assert!(
            fast.l1.probes <= 3 * 128 + 3,
            "phase compression must probe ~once per line, probed {}",
            fast.l1.probes
        );
    }

    /// A run with an explicit array slot (stagger clusters only form within
    /// one array).
    fn array_run(base: u64, stride: i64, count: u64, array: u32) -> StrideRun {
        StrideRun {
            base,
            stride,
            count,
            array,
            is_write: false,
        }
    }

    #[test]
    fn stagger_cluster_groups_match_reference_and_compress_probes() {
        // A five-tap stencil body: five same-array lanes one element apart
        // plus an output lane on a second array. The cluster's middle
        // members stop breaking phases, so only the leader and rear
        // crossings (plus the output lane's) cost heads — the probe count
        // must sit well below one probe per line per lane.
        let machine = MachineConfig::tiny_for_tests();
        let count = 1024u64;
        let mut runs: Vec<StrideRun> = (0..5)
            .map(|t| array_run(0x40000 + 8 * t, 8, count, 0))
            .collect();
        runs.push(array_run(0x80000, 8, count, 1));
        let mut fast = CacheHierarchy::from_machine(&machine);
        let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
        fast.access_run_group(&runs);
        expand_group_on(&mut slow, &runs);
        assert_same_stats(&fast, &slow, "five-tap stagger");
        assert_eq!(fast.accesses(), 6 * count);
        // Two cluster heads + shortcuts per 8-iteration line period: about
        // five real probes per period of 48 accesses.
        assert!(
            fast.l1.probes <= count,
            "stagger merging must elide middle-tap heads, probed {}",
            fast.l1.probes
        );
    }

    #[test]
    fn stagger_cluster_edge_shapes_match_reference() {
        let machine = MachineConfig::tiny_for_tests();
        let count = 700u64;
        let groups: Vec<Vec<StrideRun>> = vec![
            // Bases straddling a line boundary.
            vec![
                array_run(0x40000 - 8, 8, count, 0),
                array_run(0x40000, 8, count, 0),
                array_run(0x40000 + 8, 8, count, 0),
            ],
            // Span exactly one line minus one byte (still mergeable) and
            // span exactly one line (not mergeable) side by side.
            vec![
                array_run(0x40000, 8, count, 0),
                array_run(0x40000 + 32, 8, count, 0),
                array_run(0x40000 + 63, 8, count, 0),
            ],
            vec![
                array_run(0x40000, 8, count, 0),
                array_run(0x40000 + 32, 8, count, 0),
                array_run(0x40000 + 64, 8, count, 0),
            ],
            // Negative-stride stencil (reversal subscripts), unaligned.
            vec![
                array_run(0x54321, -8, count, 0),
                array_run(0x54321 + 16, -8, count, 0),
                array_run(0x54321 + 8, -8, count, 0),
                array_run(0x54329, -8, count, 0),
            ],
            // Duplicate taps: leader and rear share a base.
            vec![
                array_run(0x40000, 8, count, 0),
                array_run(0x40000, 8, count, 0),
                array_run(0x40000, 8, count, 0),
            ],
            // Cluster interrupted by another array's lane: the taps are not
            // contiguous in run order and must not merge across it.
            vec![
                array_run(0x40000, 8, count, 0),
                array_run(0x80000, 8, count, 1),
                array_run(0x40008, 8, count, 0),
                array_run(0x40010, 8, count, 0),
            ],
            // Two independent clusters plus a zero-stride lane between.
            vec![
                array_run(0x40000, 8, count, 0),
                array_run(0x40008, 8, count, 0),
                array_run(0x40010, 8, count, 0),
                array_run(0x70004, 0, count, 2),
                array_run(0x90000 + 24, -24, count, 1),
                array_run(0x90000, -24, count, 1),
                array_run(0x90000 + 48, -24, count, 1),
            ],
            // Non-power-of-two stride with bases straddling two boundaries.
            vec![
                array_run(0x4003c, 12, count, 0),
                array_run(0x40000, 12, count, 0),
                array_run(0x40014, 12, count, 0),
                array_run(0x40028, 12, count, 0),
            ],
        ];
        for (j, runs) in groups.iter().enumerate() {
            let mut fast = CacheHierarchy::from_machine(&machine);
            let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
            fast.access_run_group(runs);
            expand_group_on(&mut slow, runs);
            // The state left behind must be equivalent too.
            for a in (0..(1u64 << 14)).step_by(64) {
                fast.access(a);
                slow.access(a);
            }
            assert_same_stats(&fast, &slow, &format!("stagger edge group {j}"));
        }
    }

    #[test]
    fn superline_only_groups_take_the_per_access_path_up_front() {
        // Column-major walks: every lane's |stride| is at least a line, so
        // no phase can span two iterations and the lane bookkeeping is pure
        // overhead. The group must bail out per access (observable through
        // the telemetry counter) with bit-identical counters.
        let machine = MachineConfig::tiny_for_tests();
        let count = 300u64;
        let runs = vec![
            array_run(0x10000, 64, count, 0),
            array_run(0x20000, 128, count, 1),
            array_run(0x60000, -64, count, 2),
        ];
        let sink = std::sync::Arc::new(telemetry::CollectingRecorder::default());
        let mut fast = CacheHierarchy::from_machine(&machine);
        telemetry::with_recorder(sink.clone(), || {
            fast.access_run_group(&runs);
        });
        let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
        expand_group_on(&mut slow, &runs);
        assert_same_stats(&fast, &slow, "super-line bailout");
        assert_eq!(
            sink.counter_total("machine.cache.group_superline_accesses"),
            3 * count,
            "the super-line group must take the up-front per-access path"
        );

        // One sub-line lane re-enables the phase machinery: the bailout
        // counter must stay silent.
        let mixed = vec![
            array_run(0x10000, 64, count, 0),
            array_run(0x30000, 8, count, 1),
        ];
        let sink = std::sync::Arc::new(telemetry::CollectingRecorder::default());
        let mut fast = CacheHierarchy::from_machine(&machine);
        telemetry::with_recorder(sink.clone(), || {
            fast.access_run_group(&mixed);
        });
        assert_eq!(
            sink.counter_total("machine.cache.group_superline_accesses"),
            0,
            "a sub-line lane keeps the group on the lane fast path"
        );
    }

    #[test]
    fn stagger_clusters_elide_middle_lanes() {
        let machine = MachineConfig::tiny_for_tests();
        let count = 64u64;
        // Three taps: exactly one middle member is elided.
        let runs: Vec<StrideRun> = (0..3)
            .map(|t| array_run(0x40000 + 8 * t, 8, count, 0))
            .collect();
        let sink = std::sync::Arc::new(telemetry::CollectingRecorder::default());
        let mut fast = CacheHierarchy::from_machine(&machine);
        telemetry::with_recorder(sink.clone(), || {
            fast.access_run_group(&runs);
        });
        assert_eq!(
            sink.counter_total("machine.cache.group_stagger_elided"),
            count,
            "a three-tap cluster elides exactly its middle lane"
        );
        // Two taps only: leader and rear are both bounding, nothing to
        // elide, the cluster machinery must not engage.
        let pair: Vec<StrideRun> = (0..2)
            .map(|t| array_run(0x40000 + 8 * t, 8, count, 0))
            .collect();
        let sink = std::sync::Arc::new(telemetry::CollectingRecorder::default());
        let mut fast = CacheHierarchy::from_machine(&machine);
        telemetry::with_recorder(sink.clone(), || {
            fast.access_run_group(&pair);
        });
        assert_eq!(sink.counter_total("machine.cache.group_stagger_elided"), 0);
    }

    #[test]
    fn interleaved_runs_and_accesses_match_reference() {
        let machine = MachineConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(99);
        let mut fast = CacheHierarchy::from_machine(&machine);
        let mut slow = ReferenceCacheHierarchy::from_machine(&machine);
        for _ in 0..200 {
            if rng.gen_bool(0.5) {
                let start = rng.gen_range(0..1 << 16);
                let stride = *[8i64, 16, 64, -8].get(rng.gen_range(0..4usize)).unwrap();
                let count = rng.gen_range(1..200u64);
                fast.access_run(start, stride, count);
                let mut address = start as i64;
                for _ in 0..count {
                    slow.access(address as u64);
                    address += stride;
                }
            } else {
                let address = rng.gen_range(0..1 << 16);
                fast.access(address);
                slow.access(address);
            }
        }
        assert_same_stats(&fast, &slow, "interleaved");
    }
}
