//! A set-associative, write-allocate, LRU cache simulator with two levels.
//!
//! The CLOUDSC case study (Table 1) reports absolute numbers of loads and
//! evicts on the L1 cache before and after normalization + fusion; this
//! simulator reproduces those counters from the exact access stream of a
//! program.

use std::collections::BTreeMap;

use crate::config::MachineConfig;

/// Counters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of lines loaded into the level (misses of this level).
    pub loads: u64,
    /// Number of dirty or clean lines evicted to make room.
    pub evicts: u64,
    /// Number of accesses that hit in the level.
    pub hits: u64,
    /// Number of accesses that missed in the level.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no accesses were simulated.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One level of a set-associative LRU cache.
#[derive(Debug, Clone)]
struct CacheLevel {
    sets: Vec<Vec<u64>>, // per set: line tags in LRU order (front = MRU)
    assoc: usize,
    line_bytes: u64,
    set_count: u64,
    stats: CacheStats,
}

impl CacheLevel {
    fn new(capacity: usize, assoc: usize, line_bytes: usize) -> Self {
        let assoc = assoc.max(1);
        let lines = (capacity / line_bytes).max(assoc);
        let set_count = (lines / assoc).max(1) as u64;
        CacheLevel {
            sets: vec![Vec::with_capacity(assoc); set_count as usize],
            assoc,
            line_bytes: line_bytes as u64,
            set_count,
            stats: CacheStats::default(),
        }
    }

    /// Accesses the byte address; returns true on hit.
    fn access(&mut self, address: u64) -> bool {
        let line = address / self.line_bytes;
        let set_idx = (line % self.set_count) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set.remove(pos);
            set.insert(0, line);
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        self.stats.loads += 1;
        if set.len() >= self.assoc {
            set.pop();
            self.stats.evicts += 1;
        }
        set.insert(0, line);
        false
    }
}

/// A two-level cache hierarchy fed with byte addresses.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: CacheLevel,
    l2: CacheLevel,
    accesses: u64,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by a [`MachineConfig`].
    pub fn from_machine(machine: &MachineConfig) -> Self {
        CacheHierarchy {
            l1: CacheLevel::new(machine.l1_bytes, machine.l1_assoc, machine.line_bytes),
            l2: CacheLevel::new(machine.l2_bytes, machine.l2_assoc, machine.line_bytes),
            accesses: 0,
        }
    }

    /// Simulates one access to the given byte address (reads and writes are
    /// treated alike: write-allocate).
    pub fn access(&mut self, address: u64) {
        self.accesses += 1;
        if !self.l1.access(address) {
            self.l2.access(address);
        }
    }

    /// Total number of simulated accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Counters of the L1 cache.
    pub fn l1(&self) -> CacheStats {
        self.l1.stats
    }

    /// Counters of the L2 cache.
    pub fn l2(&self) -> CacheStats {
        self.l2.stats
    }
}

/// Assigns non-overlapping base addresses to the arrays of a program so that
/// linear offsets can be turned into byte addresses.
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    bases: BTreeMap<String, u64>,
}

impl AddressMap {
    /// Lays out the arrays of a program consecutively, 4 KiB aligned.
    pub fn for_program(program: &loop_ir::Program) -> Self {
        let mut bases = BTreeMap::new();
        let mut cursor: u64 = 0x1000;
        for (name, array) in &program.arrays {
            let bytes = array.size_bytes(&program.params).unwrap_or(0).max(0) as u64;
            bases.insert(name.to_string(), cursor);
            cursor += (bytes + 0xFFF) & !0xFFF;
        }
        AddressMap { bases }
    }

    /// The byte address of element `offset` (in elements) of the array.
    pub fn address(&self, array: &str, offset: i64, elem_size: usize) -> Option<u64> {
        self.bases
            .get(array)
            .map(|base| base + (offset.max(0) as u64) * elem_size as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::from_machine(&MachineConfig::tiny_for_tests())
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        c.access(0);
        c.access(8);
        c.access(16);
        assert_eq!(c.l1().misses, 1, "same line");
        assert_eq!(c.l1().hits, 2);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn streaming_misses_once_per_line() {
        let mut c = tiny();
        for i in 0..1024u64 {
            c.access(i * 8);
        }
        // 1024 doubles = 8 KiB = 128 lines.
        assert_eq!(c.l1().loads, 128);
        assert_eq!(c.l1().hits, 1024 - 128);
    }

    #[test]
    fn capacity_evictions_occur() {
        let machine = MachineConfig::tiny_for_tests(); // 1 KiB L1 = 16 lines
        let mut c = CacheHierarchy::from_machine(&machine);
        // touch 64 distinct lines twice; the second pass misses again in L1
        // because the working set (4 KiB) exceeds the 1 KiB L1.
        for _ in 0..2 {
            for i in 0..64u64 {
                c.access(i * 64);
            }
        }
        assert!(c.l1().evicts > 0);
        assert!(c.l1().misses > 64);
        // but the 8 KiB L2 holds the working set: second-pass L2 hits.
        assert!(c.l2().hits > 0);
    }

    #[test]
    fn working_set_within_l1_has_no_evicts_on_reuse() {
        let machine = MachineConfig::tiny_for_tests();
        let mut c = CacheHierarchy::from_machine(&machine);
        for _ in 0..4 {
            for i in 0..8u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.l1().loads, 8);
        assert_eq!(c.l1().evicts, 0);
        assert!(c.l1().hit_rate() > 0.7);
    }

    #[test]
    fn lru_replacement_order() {
        // Direct construction: 4 lines capacity, assoc 4, one set.
        let mut level = CacheLevel::new(256, 4, 64);
        assert_eq!(level.set_count, 1);
        for addr in [0u64, 64, 128, 192] {
            level.access(addr);
        }
        // Touch line 0 to make it MRU, then insert a new line: line 64 (LRU)
        // must be evicted, so accessing 0 still hits but 64 misses.
        level.access(0);
        level.access(256);
        assert!(level.access(0));
        assert!(!level.access(64));
    }

    #[test]
    fn address_map_keeps_arrays_disjoint() {
        use loop_ir::prelude::*;
        let p = Program::builder("two")
            .param("N", 100)
            .array("A", &["N"])
            .array("B", &["N"])
            .build()
            .unwrap();
        let map = AddressMap::for_program(&p);
        let a_last = map.address("A", 99, 8).unwrap();
        let b_first = map.address("B", 0, 8).unwrap();
        assert!(a_last < b_first);
        assert!(map.address("Z", 0, 8).is_none());
    }

    #[test]
    fn hit_rate_of_empty_stats_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
