//! An analytical cost model for loop-nest programs.
//!
//! Measuring wall-clock time of generated machine code is not available to
//! this reproduction (no LLVM backend), so schedules are compared through an
//! analytical model of the paper's experimental machine: a cache-aware
//! roofline. For every computation the model estimates
//!
//! * compute time from the FLOP count, SIMD annotations and the machine's
//!   issue width,
//! * memory time from a working-set analysis of the enclosing loops: the
//!   outermost loop level whose data footprint fits each cache level
//!   determines how often lines must be re-fetched, and the stride of the
//!   innermost iterator determines how much of every fetched line is used,
//! * parallel time from the loop-level `parallel` annotations, including the
//!   saturating memory bandwidth and the atomic penalty of parallelized
//!   reductions.
//!
//! Absolute seconds are indicative only; the model's purpose is to rank
//! schedules the same way the paper's Xeon does (who wins, by what factor,
//! where the crossovers are).
//!
//! # Memoization
//!
//! The evolutionary search prices thousands of candidate programs that differ
//! in a single nest; re-deriving the working-set analysis for the unchanged
//! nests dominated its runtime. [`CostModel`] therefore memoizes at two
//! levels, both behind structural hashes and both shared across clones of a
//! model (worker threads costing candidates in parallel populate one table):
//!
//! 1. **Per nest.** A nest's cost is a pure function of *(machine, thread
//!    count, program environment, nest structure)*, where the environment is
//!    the parameter bindings and array declarations
//!    ([`Program::environment_hash`]) and the structure is everything
//!    [`loop_ir::structural_hash_node`] covers (bounds, steps, schedule
//!    annotations, subscripts, values — statement names excluded).
//! 2. **Per run signature.** Below the nest level, every computation's
//!    *run summary* — the absolute linearized stride of each access along
//!    each iterator, the access-affinity flags and the target's subscript
//!    variables, i.e. exactly the per-iterator facts a constant-stride run
//!    of the access exposes — is memoized keyed by `(environment,
//!    computation structure)`. The summary is independent of the enclosing
//!    loop order, so search candidates that only permute, annotate or
//!    re-tile the outer loops miss layer 1 but re-price from cached run
//!    summaries: the symbolic affine extraction is never repeated, only the
//!    cheap per-stack arithmetic.
//!
//! Both layers can be disabled with [`CostModel::without_memoization`] for
//! baseline measurements; estimates are bit-identical either way.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

use loop_ir::expr::Var;
use loop_ir::nest::{BlasCall, Computation, Loop, Node};
use loop_ir::program::Program;
use loop_ir::structural_hash_node;
use loop_ir::visit::structural_hash_nodes;

use crate::blas::blas_call_time;
use crate::config::MachineConfig;
use crate::shard::{simulate_cache_sharded_with_plan, ShardPlan, ShardedCacheStats};

/// Shared memo table of a [`CostModel`]: per-nest costs keyed by
/// `(environment hash, nest structural hash)`.
type CostMemo = Arc<Mutex<HashMap<(u64, u64), NestCost>>>;

/// Shared run-summary table: per-computation summaries keyed by
/// `(environment hash, computation structural hash)`.
type SummaryMemo = Arc<Mutex<HashMap<(u64, u64), Arc<CompSummary>>>>;

/// Shared sharded-simulation table: merged cache counters keyed by
/// `(environment hash, body structural hash, shard-plan fingerprint)` —
/// shard-aware, so a plan change (different block count, different
/// fallback windows) can never alias a stale simulation.
type SimMemo = Arc<Mutex<HashMap<(u64, u64, u64), Arc<ShardedCacheStats>>>>;

/// The run summary of one computation: every IR-derived fact the pricing
/// arithmetic needs, independent of the enclosing loop order. Deriving it
/// (symbolic affine extraction per access) is the expensive part of pricing
/// a computation; everything downstream is arithmetic over the loop stack.
#[derive(Debug, Clone)]
struct CompSummary {
    /// Floating-point operations per dynamic execution.
    flops: f64,
    /// Whether the statement is a reduction update.
    reduction: bool,
    /// Iterators referenced by the target's subscripts.
    target_vars: BTreeSet<Var>,
    /// Per access (in [`Computation::accesses`] order): the absolute
    /// linearized element stride along every iterator, or `None` when the
    /// access is non-affine or its array is unknown.
    coeffs: Vec<Option<BTreeMap<Var, u64>>>,
}

impl CompSummary {
    fn of(program: &Program, comp: &Computation) -> CompSummary {
        let coeffs = comp
            .accesses()
            .iter()
            .map(|access| {
                program
                    .array(&access.array_ref.array)
                    .ok()
                    .and_then(|array| access.array_ref.linear_offset(array, &program.params))
                    .map(|offset| {
                        offset
                            .terms()
                            .map(|(v, c)| (v.clone(), c.unsigned_abs()))
                            .collect()
                    })
            })
            .collect();
        let mut target_vars = BTreeSet::new();
        for idx in &comp.target.indices {
            target_vars.extend(idx.vars());
        }
        CompSummary {
            flops: comp.flops() as f64,
            reduction: comp.reduction.is_some(),
            target_vars,
            coeffs,
        }
    }

    /// Absolute element stride of access `i` along `iter` (zero if the
    /// iterator does not appear; `None` when the access is non-affine).
    fn stride_of(&self, access: usize, iter: &Var) -> Option<u64> {
        self.coeffs[access]
            .as_ref()
            .map(|map| map.get(iter).copied().unwrap_or(0))
    }
}

/// Loop-control overhead in cycles per executed loop iteration (increment,
/// compare, branch). Negligible for large loop bodies, but it is what makes
/// fully operator-at-a-time code (one tiny loop per intermediate value)
/// slower than the same statements fused into one loop.
const LOOP_OVERHEAD_CYCLES: f64 = 1.0;

/// Estimated cost of one top-level node (loop nest or library call).
#[derive(Debug, Clone, PartialEq)]
pub struct NestCost {
    /// Short description (nest iterators or library call name).
    pub description: String,
    /// Estimated execution time in seconds.
    pub seconds: f64,
    /// Floating-point operations executed.
    pub flops: f64,
    /// Estimated DRAM traffic in bytes.
    pub dram_bytes: f64,
}

/// Estimated cost of a whole program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostReport {
    /// Total estimated time in seconds.
    pub seconds: f64,
    /// Total floating-point operations.
    pub flops: f64,
    /// Total estimated DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// Per-top-level-node breakdown.
    pub per_nest: Vec<NestCost>,
}

impl CostReport {
    /// Achieved FLOP/s under the model.
    pub fn flops_per_second(&self) -> f64 {
        if self.seconds > 0.0 {
            self.flops / self.seconds
        } else {
            0.0
        }
    }
}

/// How the model's cache tier prices a program: exact simulation, the
/// bounded-error analytic estimate, or the automatic split that spends
/// exact simulation only on final winner validation.
///
/// The knob is **ranking-neutral by construction**: candidate ranking in
/// the evolutionary search goes through the roofline estimate
/// ([`CostModel::estimate`]), never through the cache tier, so the mode
/// can never change which schedule wins — which is why it is excluded from
/// store fingerprints (`daisy`'s scheduler records which mode priced the
/// winner in its outcome instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostMode {
    /// Always run the exact sharded simulation (bit-identical counters).
    #[default]
    Exact,
    /// Always answer from the analytic tier ([`crate::estimate_cache`]):
    /// O(run signatures), counters within the reported error bound.
    Analytic,
    /// Analytic during search generations, exact for the final winner.
    Auto,
}

impl CostMode {
    /// Parses the CLI spelling (`exact` / `analytic` / `auto`).
    pub fn parse(s: &str) -> Option<CostMode> {
        match s {
            "exact" => Some(CostMode::Exact),
            "analytic" => Some(CostMode::Analytic),
            "auto" => Some(CostMode::Auto),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            CostMode::Exact => "exact",
            CostMode::Analytic => "analytic",
            CostMode::Auto => "auto",
        }
    }

    /// Whether a pricing at this mode uses the exact tier.
    /// `final_validation` marks the winner-validation call of a search (the
    /// only exact pricing `Auto` pays for).
    pub fn uses_exact(&self, final_validation: bool) -> bool {
        match self {
            CostMode::Exact => true,
            CostMode::Analytic => false,
            CostMode::Auto => final_validation,
        }
    }
}

/// Which tier actually priced a result — recorded by consumers (e.g. the
/// scheduler's outcome) so a stored winner is auditable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PricedWith {
    /// The exact sharded simulation.
    Exact,
    /// The analytic bounded-error estimate.
    Analytic,
}

/// The answer of [`CostModel::assess_cache`]: exact counters or a
/// bounded-error estimate, depending on the model's [`CostMode`].
#[derive(Debug, Clone)]
pub enum CacheAssessment {
    /// Counters from the exact sharded simulation.
    Exact(Arc<ShardedCacheStats>),
    /// The analytic estimate with its error bound.
    Analytic(Arc<crate::analytic::CacheEstimate>),
}

impl CacheAssessment {
    /// L1 counters (exact or estimated).
    pub fn l1(&self) -> crate::CacheStats {
        match self {
            CacheAssessment::Exact(stats) => stats.l1(),
            CacheAssessment::Analytic(est) => est.l1,
        }
    }

    /// L2 counters (exact or estimated).
    pub fn l2(&self) -> crate::CacheStats {
        match self {
            CacheAssessment::Exact(stats) => stats.l2(),
            CacheAssessment::Analytic(est) => est.l2,
        }
    }

    /// Total accesses (exact in both tiers).
    pub fn accesses(&self) -> u64 {
        match self {
            CacheAssessment::Exact(stats) => stats.accesses(),
            CacheAssessment::Analytic(est) => est.accesses,
        }
    }

    /// The tier that produced this assessment.
    pub fn priced_with(&self) -> PricedWith {
        match self {
            CacheAssessment::Exact(_) => PricedWith::Exact,
            CacheAssessment::Analytic(_) => PricedWith::Analytic,
        }
    }

    /// The error bound on the miss counts: zero for the exact tier, the
    /// estimate's reported bound otherwise.
    pub fn error_bound(&self) -> u64 {
        match self {
            CacheAssessment::Exact(_) => 0,
            CacheAssessment::Analytic(est) => est.error_bound,
        }
    }
}

/// Shared analytic-estimate table: estimates keyed by `(environment hash,
/// body structural hash)` — the estimate depends on nothing else for a
/// fixed machine.
type AnalyticMemo = Arc<Mutex<HashMap<(u64, u64), Arc<crate::analytic::CacheEstimate>>>>;

/// The analytical cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    machine: MachineConfig,
    threads: usize,
    /// Per-nest memo, shared across clones so parallel workers fill one
    /// table; `None` disables memoization.
    memo: Option<CostMemo>,
    /// Per-computation run-summary memo (layer 2), shared like `memo`.
    summaries: Option<SummaryMemo>,
    /// Sharded-simulation memo (layer 3), shared like `memo`.
    sims: Option<SimMemo>,
    /// Worker threads of [`CostModel::simulated_cache`]'s sharded driver.
    /// `0` lets the machine decide. Result-neutral by the shard layer's
    /// determinism contract — the simulated counters are bit-identical at
    /// any value — so unlike `threads` it is never part of memo keys or
    /// store fingerprints.
    simulation_parallelism: usize,
    /// Analytic-estimate memo (layer 4), shared like `memo`.
    analytic: Option<AnalyticMemo>,
    /// Which cache tier [`CostModel::assess_cache`] answers from.
    /// Ranking-neutral (see [`CostMode`]), so never part of memo keys or
    /// store fingerprints.
    cost_mode: CostMode,
}

#[derive(Debug, Clone)]
struct LoopInfo {
    iter: Var,
    trip: f64,
    /// Midpoint of the iterator's value range, used to evaluate bounds of
    /// inner loops that depend on this iterator.
    mid_value: i64,
    /// Variables referenced by this loop's bounds (needed to attribute tiled
    /// accesses to their tile loops).
    bound_vars: std::collections::BTreeSet<Var>,
    parallel: bool,
    vectorize: bool,
}

impl CostModel {
    /// Creates a cost model for `threads` worker threads on `machine`,
    /// with per-nest memoization enabled.
    pub fn new(machine: MachineConfig, threads: usize) -> Self {
        CostModel {
            threads: threads.max(1),
            machine,
            memo: Some(Arc::new(Mutex::new(HashMap::new()))),
            summaries: Some(Arc::new(Mutex::new(HashMap::new()))),
            sims: Some(Arc::new(Mutex::new(HashMap::new()))),
            simulation_parallelism: 0,
            analytic: Some(Arc::new(Mutex::new(HashMap::new()))),
            cost_mode: CostMode::default(),
        }
    }

    /// Creates a sequential cost model for the paper's machine.
    pub fn sequential() -> Self {
        CostModel::new(MachineConfig::default(), 1)
    }

    /// Returns this model with memoization disabled — every nest is priced
    /// from scratch. The pre-refactor behavior, kept for baseline benches.
    pub fn without_memoization(mut self) -> Self {
        self.memo = None;
        self.summaries = None;
        self.sims = None;
        self.analytic = None;
        self
    }

    /// Returns this model answering [`CostModel::assess_cache`] at the
    /// given [`CostMode`]. Ranking-neutral: candidate ranking never goes
    /// through the cache tier, so the chosen schedule is identical at any
    /// mode (the scheduler's tests pin this).
    pub fn with_cost_mode(mut self, mode: CostMode) -> Self {
        self.cost_mode = mode;
        self
    }

    /// The mode [`CostModel::assess_cache`] answers at.
    pub fn cost_mode(&self) -> CostMode {
        self.cost_mode
    }

    /// Returns this model with the given sharded-simulation worker count
    /// (`0` lets the machine decide). Exclusively a wall-clock knob: the
    /// counters [`CostModel::simulated_cache`] returns are bit-identical at
    /// any value.
    pub fn with_simulation_parallelism(mut self, workers: usize) -> Self {
        self.simulation_parallelism = workers;
        self
    }

    /// The worker count [`CostModel::simulated_cache`] fans shards out on.
    pub fn simulation_parallelism(&self) -> usize {
        self.simulation_parallelism
    }

    /// Number of distinct nests currently memoized.
    pub fn memo_entries(&self) -> usize {
        self.memo
            .as_ref()
            .map(|memo| memo.lock().expect("cost memo poisoned").len())
            .unwrap_or(0)
    }

    /// Number of distinct computation run summaries currently memoized.
    pub fn run_summary_entries(&self) -> usize {
        self.summaries
            .as_ref()
            .map(|memo| memo.lock().expect("summary memo poisoned").len())
            .unwrap_or(0)
    }

    /// Number of distinct sharded simulations currently memoized.
    pub fn simulation_entries(&self) -> usize {
        self.sims
            .as_ref()
            .map(|memo| memo.lock().expect("simulation memo poisoned").len())
            .unwrap_or(0)
    }

    /// The exact-simulation tier of the model: the program's merged cache
    /// counters from the block-sharded driver
    /// ([`simulate_cache_sharded`](crate::simulate_cache_sharded)), fanned
    /// out on [`simulation_parallelism`](CostModel::simulation_parallelism)
    /// workers. Multi-block computations cut at block granularity, anything
    /// else at run-group windows, so the paper's full `NBLOCKS = 4096`
    /// CLOUDSC traces stay cheap enough to sit inside a search loop.
    ///
    /// Memoized like the analytic tiers, but with a *shard-aware* key —
    /// `(environment hash, body structural hash, plan fingerprint)` — since
    /// the merged counters are defined per plan. The worker count is
    /// deliberately **not** part of the key: by the shard layer's
    /// determinism contract it cannot change the counters, so models that
    /// differ only in parallelism share entries.
    ///
    /// # Errors
    /// Lowering and trace-generation errors.
    pub fn simulated_cache(
        &self,
        program: &Program,
    ) -> Result<Arc<ShardedCacheStats>, crate::MachineError> {
        let compiled = crate::CompiledProgram::lower(program)?;
        let plan = ShardPlan::for_program(&compiled)?;
        let key = (
            program.environment_hash(),
            structural_hash_nodes(&program.body),
            plan.fingerprint(),
        );
        if let Some(memo) = self.sims.as_ref() {
            if let Some(hit) = memo.lock().expect("simulation memo poisoned").get(&key) {
                telemetry::counter("machine.cost.sim_memo_hits", 1);
                return Ok(hit.clone());
            }
            telemetry::counter("machine.cost.sim_memo_misses", 1);
        }
        let stats = Arc::new(simulate_cache_sharded_with_plan(
            &compiled,
            &plan,
            &self.machine,
            self.simulation_parallelism,
        )?);
        if let Some(memo) = self.sims.as_ref() {
            memo.lock()
                .expect("simulation memo poisoned")
                .insert(key, stats.clone());
        }
        Ok(stats)
    }

    /// The analytic tier of the model: a bounded-error cache estimate in
    /// O(run signatures), memoized keyed by `(environment hash, body
    /// structural hash)` — the estimate is a pure function of those for a
    /// fixed machine.
    ///
    /// # Errors
    /// Lowering and streaming errors.
    pub fn analytic_cache(
        &self,
        program: &Program,
    ) -> Result<Arc<crate::analytic::CacheEstimate>, crate::MachineError> {
        let key = (
            program.environment_hash(),
            structural_hash_nodes(&program.body),
        );
        if let Some(memo) = self.analytic.as_ref() {
            if let Some(hit) = memo.lock().expect("analytic memo poisoned").get(&key) {
                telemetry::counter("machine.cost.analytic_memo_hits", 1);
                return Ok(hit.clone());
            }
            telemetry::counter("machine.cost.analytic_memo_misses", 1);
        }
        let estimate = Arc::new(crate::analytic::estimate_cache(program, &self.machine)?);
        if let Some(memo) = self.analytic.as_ref() {
            memo.lock()
                .expect("analytic memo poisoned")
                .insert(key, estimate.clone());
        }
        Ok(estimate)
    }

    /// Prices the program's cache behaviour at the model's [`CostMode`]:
    /// the exact sharded simulation or the analytic bounded-error estimate.
    /// `final_validation` marks the winner-validation pricing of a search —
    /// the only call `Auto` answers exactly. Telemetry counts which tier
    /// answered (`machine.cost.analytic_pricings` /
    /// `machine.cost.exact_pricings`).
    ///
    /// # Errors
    /// Lowering, trace-generation and streaming errors.
    pub fn assess_cache(
        &self,
        program: &Program,
        final_validation: bool,
    ) -> Result<CacheAssessment, crate::MachineError> {
        if self.cost_mode.uses_exact(final_validation) {
            telemetry::counter("machine.cost.exact_pricings", 1);
            Ok(CacheAssessment::Exact(self.simulated_cache(program)?))
        } else {
            telemetry::counter("machine.cost.analytic_pricings", 1);
            Ok(CacheAssessment::Analytic(self.analytic_cache(program)?))
        }
    }

    /// The machine description used by the model.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The number of threads the model assumes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Estimates the execution cost of a program.
    pub fn estimate(&self, program: &Program) -> CostReport {
        let env = self.memo.as_ref().map(|_| program.environment_hash());
        let mut report = CostReport::default();
        for node in &program.body {
            let cost = self.node_cost_with_env(program, node, env);
            report.seconds += cost.seconds;
            report.flops += cost.flops;
            report.dram_bytes += cost.dram_bytes;
            report.per_nest.push(cost);
        }
        report
    }

    /// Cost of a single top-level node under the program's environment
    /// (parameters, scalar parameters, arrays). `node` does not have to be
    /// part of `program.body`: the scheduler prices transformed nests this
    /// way without materializing candidate programs. Memoized per
    /// `(environment, node structure)` exactly like [`estimate`](Self::estimate).
    pub fn node_cost(&self, program: &Program, node: &Node) -> NestCost {
        let env = self.memo.as_ref().map(|_| program.environment_hash());
        self.node_cost_with_env(program, node, env)
    }

    fn node_cost_with_env(&self, program: &Program, node: &Node, env: Option<u64>) -> NestCost {
        match node {
            Node::Loop(l) => self.nest_cost_memoized(program, node, l, env),
            Node::Call(call) => self.estimate_call(program, call),
            Node::Computation(c) => NestCost {
                description: c.name.clone(),
                seconds: c.flops() as f64 / self.machine.frequency_hz,
                flops: c.flops() as f64,
                dram_bytes: 0.0,
            },
        }
    }

    /// Per-nest cost with memo lookup; `env` is `Some` iff memoization is on.
    fn nest_cost_memoized(
        &self,
        program: &Program,
        node: &Node,
        nest: &Loop,
        env: Option<u64>,
    ) -> NestCost {
        let (Some(env), Some(memo)) = (env, self.memo.as_ref()) else {
            return self.estimate_nest(program, nest, env);
        };
        let key = (env, structural_hash_node(node));
        if let Some(hit) = memo.lock().expect("cost memo poisoned").get(&key) {
            telemetry::counter("machine.cost.memo_hits", 1);
            return hit.clone();
        }
        telemetry::counter("machine.cost.memo_misses", 1);
        let cost = self.estimate_nest(program, nest, Some(env));
        memo.lock()
            .expect("cost memo poisoned")
            .insert(key, cost.clone());
        cost
    }

    /// The run summary of a computation, from the layer-2 memo when
    /// memoization is on (`env` is `Some`), derived fresh otherwise.
    fn comp_summary(
        &self,
        program: &Program,
        node: &Node,
        comp: &Computation,
        env: Option<u64>,
    ) -> Arc<CompSummary> {
        let (Some(env), Some(memo)) = (env, self.summaries.as_ref()) else {
            return Arc::new(CompSummary::of(program, comp));
        };
        let key = (env, structural_hash_node(node));
        if let Some(hit) = memo.lock().expect("summary memo poisoned").get(&key) {
            telemetry::counter("machine.cost.summary_memo_hits", 1);
            return hit.clone();
        }
        telemetry::counter("machine.cost.summary_memo_misses", 1);
        let summary = Arc::new(CompSummary::of(program, comp));
        memo.lock()
            .expect("summary memo poisoned")
            .insert(key, summary.clone());
        summary
    }

    /// Estimates one BLAS library call.
    fn estimate_call(&self, program: &Program, call: &BlasCall) -> NestCost {
        let flops = call.flops(&program.params).unwrap_or(0) as f64;
        let mut bytes = 0.0;
        for name in call.inputs.iter().chain(std::iter::once(&call.output)) {
            if let Ok(array) = program.array(name) {
                bytes += array.size_bytes(&program.params).unwrap_or(0) as f64;
            }
        }
        let seconds = blas_call_time(&self.machine, flops, bytes, self.threads);
        NestCost {
            description: format!("{call}"),
            seconds,
            flops,
            dram_bytes: bytes,
        }
    }

    /// Estimates one top-level loop nest.
    fn estimate_nest(&self, program: &Program, nest: &Loop, env: Option<u64>) -> NestCost {
        let mut total = NestCost {
            description: nest
                .nested_iterators()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(","),
            seconds: 0.0,
            flops: 0.0,
            dram_bytes: 0.0,
        };
        let mut stack = Vec::new();
        self.walk(program, nest, &mut stack, &mut total, env);
        // Nested library calls contribute through walk as well.
        total
    }

    fn walk(
        &self,
        program: &Program,
        l: &Loop,
        stack: &mut Vec<LoopInfo>,
        total: &mut NestCost,
        env: Option<u64>,
    ) {
        let (trip, mid_value) = self.average_trip(program, l, stack);
        // Loop-control overhead for every dynamic iteration of this loop,
        // amortized over the threads executing it when a parallel loop
        // encloses it (or it is parallel itself).
        let iterations: f64 = stack.iter().map(|s| s.trip).product::<f64>() * trip;
        let parallelized = l.schedule.parallel || stack.iter().any(|s| s.parallel);
        let overhead_threads = if parallelized {
            self.threads.min(self.machine.cores).max(1) as f64
        } else {
            1.0
        };
        total.seconds +=
            iterations * LOOP_OVERHEAD_CYCLES / self.machine.frequency_hz / overhead_threads;
        let mut bound_vars = l.lower.vars();
        bound_vars.extend(l.upper.vars());
        stack.push(LoopInfo {
            iter: l.iter.clone(),
            trip,
            mid_value,
            bound_vars,
            parallel: l.schedule.parallel,
            vectorize: l.schedule.vectorize,
        });
        for node in &l.body {
            match node {
                Node::Loop(inner) => self.walk(program, inner, stack, total, env),
                Node::Computation(c) => {
                    let summary = self.comp_summary(program, node, c, env);
                    let cost = self.computation_cost(&summary, &c.name, stack);
                    total.seconds += cost.seconds;
                    total.flops += cost.flops;
                    total.dram_bytes += cost.dram_bytes;
                }
                Node::Call(call) => {
                    let mut cost = self.estimate_call(program, call);
                    let outer_iters: f64 = stack.iter().map(|s| s.trip).product();
                    cost.seconds *= outer_iters;
                    cost.flops *= outer_iters;
                    cost.dram_bytes *= outer_iters;
                    total.seconds += cost.seconds;
                    total.flops += cost.flops;
                    total.dram_bytes += cost.dram_bytes;
                }
            }
        }
        stack.pop();
    }

    /// Average trip count of a loop (and the midpoint of its value range),
    /// evaluating bounds with outer iterators bound to the midpoint of their
    /// own ranges (handles triangular and tiled domains).
    fn average_trip(&self, program: &Program, l: &Loop, stack: &[LoopInfo]) -> (f64, i64) {
        let mut bindings: BTreeMap<Var, i64> = program.params.clone();
        for info in stack {
            bindings.insert(info.iter.clone(), info.mid_value);
        }
        let lower = l.lower.eval(&bindings).unwrap_or(0);
        let upper = l.upper.eval(&bindings).unwrap_or(lower);
        let extent = (upper - lower).max(0) as f64;
        let trip = (extent / l.step.max(1) as f64).max(1.0);
        (trip, lower + (extent as i64) / 2)
    }

    fn computation_cost(&self, summary: &CompSummary, name: &str, stack: &[LoopInfo]) -> NestCost {
        let total_iters: f64 = stack.iter().map(|s| s.trip).product::<f64>().max(1.0);
        let flops = summary.flops * total_iters;

        // ---- compute time ----------------------------------------------
        let innermost = stack.last();
        let mut flops_per_cycle = self.machine.scalar_flops_per_cycle;
        if let Some(inner) = innermost {
            if inner.vectorize && Self::vectorizable(summary, &inner.iter) {
                flops_per_cycle *=
                    self.machine.vector_width as f64 * self.machine.vector_efficiency;
            }
        }
        // Very large loop bodies (heavily unrolled physics code) suffer from
        // register pressure; model a mild penalty that fission removes.
        let body_size_penalty = 1.0 + (summary.flops / 64.0).min(1.0);
        let mut compute_seconds =
            flops * body_size_penalty / (self.machine.frequency_hz * flops_per_cycle);

        // ---- memory time -------------------------------------------------
        let (dram_bytes, l2_bytes) = self.memory_traffic(summary, stack);

        // ---- parallelism --------------------------------------------------
        let parallel_level = stack.iter().position(|s| s.parallel);
        let mut threads = 1usize;
        let mut overhead = 0.0;
        let mut atomic = false;
        if let Some(level) = parallel_level {
            threads = self
                .threads
                .min(self.machine.cores)
                .min(stack[level].trip.round() as usize)
                .max(1);
            let outer_regions: f64 = stack[..level]
                .iter()
                .map(|s| s.trip)
                .product::<f64>()
                .max(1.0);
            overhead = self.machine.parallel_overhead * threads as f64 * outer_regions;
            // A reduction whose target does not vary with the parallel loop
            // must be updated atomically. "Varies" includes indirect
            // variation through loop bounds: a tile's point loop owns a
            // distinct slice of the target for every tile-loop iteration.
            if summary.reduction {
                let mut influencing: Vec<Var> = stack
                    .iter()
                    .map(|s| s.iter.clone())
                    .filter(|iter| summary.target_vars.contains(iter))
                    .collect();
                let mut changed = true;
                while changed {
                    changed = false;
                    for info in stack.iter() {
                        if influencing.contains(&info.iter) {
                            continue;
                        }
                        let influences = influencing.iter().any(|v| {
                            stack
                                .iter()
                                .find(|s| &s.iter == v)
                                .map(|s| s.bound_vars.contains(&info.iter))
                                .unwrap_or(false)
                        });
                        if influences {
                            influencing.push(info.iter.clone());
                            changed = true;
                        }
                    }
                }
                if !influencing.contains(&stack[level].iter) {
                    atomic = true;
                }
            }
        }

        let memory_seconds = if threads > 1 {
            dram_bytes / self.machine.bandwidth_with_threads(threads)
                + l2_bytes / (self.machine.l2_bandwidth * threads as f64)
        } else {
            dram_bytes / self.machine.dram_bandwidth + l2_bytes / self.machine.l2_bandwidth
        };

        if atomic {
            // Atomic updates serialize: no parallel speedup and every update
            // pays the penalty.
            compute_seconds *= self.machine.atomic_penalty;
        } else if threads > 1 {
            compute_seconds /= threads as f64;
        }

        let seconds = compute_seconds.max(memory_seconds) + overhead;
        NestCost {
            description: name.to_string(),
            seconds,
            flops,
            dram_bytes,
        }
    }

    /// A computation vectorizes well along `iter` when none of its accesses
    /// has a large stride along that iterator (unit stride and loop-invariant
    /// accesses are fine).
    fn vectorizable(summary: &CompSummary, iter: &Var) -> bool {
        (0..summary.coeffs.len()).all(|access| {
            summary
                .stride_of(access, iter)
                .is_some_and(|stride| stride <= 1)
        })
    }

    /// Estimated (DRAM bytes, L2 bytes) moved for all dynamic instances of a
    /// computation, via a working-set analysis over its loop stack.
    fn memory_traffic(&self, summary: &CompSummary, stack: &[LoopInfo]) -> (f64, f64) {
        let n_accesses = summary.coeffs.len();
        let elems_per_line = self.machine.elems_per_line(8) as f64;
        let depth = stack.len();

        // Per access: the absolute linearized stride along every stack loop
        // (straight from the cached run summary), and the set of loops that
        // vary the access. A loop varies an access if its iterator appears
        // in the subscripts, or (transitively) if a varying loop's bounds
        // depend on it — this attributes tiled accesses to their tile loops,
        // whose iterators only appear in point-loop bounds.
        let mut coeffs: Vec<Vec<f64>> = Vec::with_capacity(n_accesses);
        let mut varying: Vec<Vec<bool>> = Vec::with_capacity(n_accesses);
        for access in 0..n_accesses {
            let per_loop: Vec<f64> = match &summary.coeffs[access] {
                Some(map) => stack
                    .iter()
                    .map(|info| map.get(&info.iter).copied().unwrap_or(0) as f64)
                    .collect(),
                // Non-affine access: treat as touching a new line at every
                // level (worst case).
                None => vec![f64::INFINITY; depth],
            };
            let mut varies: Vec<bool> = per_loop.iter().map(|c| *c > 0.0).collect();
            // Transitive closure through loop bounds.
            loop {
                let mut changed = false;
                for v in 0..depth {
                    if !varies[v] {
                        continue;
                    }
                    for m in 0..depth {
                        if !varies[m] && stack[v].bound_vars.contains(&stack[m].iter) {
                            varies[m] = true;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            coeffs.push(per_loop);
            varying.push(varies);
        }

        // Distinct cache lines one access touches while the loops
        // `level..depth` execute once.
        let lines_for = |access_idx: usize, level: usize| -> f64 {
            let c = &coeffs[access_idx];
            let varies = &varying[access_idx];
            let mut elements = 1.0;
            for l in level..depth {
                if varies[l] {
                    elements *= stack[l].trip;
                }
            }
            // Spatial locality is governed by the smallest non-zero stride of
            // a loop inside the window (the loop walking along a cache line);
            // bound-driven loops (tile loops) fall back to the globally
            // smallest stride because consecutive tiles are adjacent.
            let mut min_stride = f64::INFINITY;
            for &stride in &c[level..depth] {
                if stride > 0.0 {
                    min_stride = min_stride.min(stride);
                }
            }
            if min_stride.is_infinite() {
                for &stride in &c[..depth] {
                    if stride > 0.0 {
                        min_stride = min_stride.min(stride);
                    }
                }
            }
            if elements <= 1.0 {
                return 1.0;
            }
            if min_stride.is_infinite() {
                return elements;
            }
            if min_stride <= 1.0 {
                (elements / elems_per_line).max(1.0)
            } else if min_stride < elems_per_line {
                (elements * min_stride / elems_per_line).max(1.0)
            } else {
                elements
            }
        };

        // Footprint of the sub-nest starting at `level` (bytes).
        let footprint = |level: usize| -> f64 {
            (0..n_accesses).map(|i| lines_for(i, level)).sum::<f64>()
                * self.machine.line_bytes as f64
        };

        // Outermost level whose footprint fits the given capacity.
        let fit_level = |capacity: f64| -> usize {
            for level in 0..depth {
                if footprint(level) <= capacity {
                    return level;
                }
            }
            depth
        };

        let dram_level = fit_level(self.machine.l3_bytes as f64 * 0.8);
        let l1_level = fit_level(self.machine.l1_bytes as f64 * 0.8);

        let executions_outside = |level: usize| -> f64 {
            stack[..level]
                .iter()
                .map(|s| s.trip)
                .product::<f64>()
                .max(1.0)
        };

        // Traffic through a cache boundary: once the sub-nest one level above
        // the fitting level no longer fits, each of its executions re-fetches
        // its distinct lines; if everything fits, only compulsory misses
        // remain.
        let traffic = |access_idx: usize, fit: usize| -> f64 {
            let lines = if fit == 0 {
                lines_for(access_idx, 0)
            } else {
                executions_outside(fit - 1) * lines_for(access_idx, fit - 1)
            };
            lines * self.machine.line_bytes as f64
        };

        let mut dram_bytes = 0.0;
        let mut l2_bytes = 0.0;
        for i in 0..n_accesses {
            dram_bytes += traffic(i, dram_level);
            l2_bytes += traffic(i, l1_level);
        }
        (dram_bytes, l2_bytes)
    }
}

/// Total floating-point operations of a program (loop trip counts evaluated
/// under its concrete parameters).
pub fn count_flops(program: &Program) -> f64 {
    CostModel::sequential().estimate(program).flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;
    use transforms::{tile_band, Recipe, Transform};

    fn gemm(order: &str, n: i64) -> Program {
        let loops: Vec<char> = order.chars().collect();
        parse_program(&format!(
            "program gemm {{ param NI = {n}; param NJ = {n}; param NK = {n};
               array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
               for {a} in 0..N{a_up} {{ for {b} in 0..N{b_up} {{ for {c} in 0..N{c_up} {{
                 C[i][j] += A[i][k] * B[k][j];
               }} }} }} }}",
            a = loops[0],
            b = loops[1],
            c = loops[2],
            a_up = loops[0].to_uppercase(),
            b_up = loops[1].to_uppercase(),
            c_up = loops[2].to_uppercase(),
        ))
        .unwrap()
    }

    #[test]
    fn flop_count_matches_iteration_space() {
        let p = gemm("ijk", 100);
        let report = CostModel::sequential().estimate(&p);
        // 2 flops per iteration (mul + reduction add).
        assert!((report.flops - 2.0 * 100.0_f64.powi(3)).abs() < 1.0);
        assert!(report.seconds > 0.0);
        assert!(report.flops_per_second() > 0.0);
    }

    #[test]
    fn loop_order_changes_estimated_runtime() {
        let model = CostModel::sequential();
        let good = model.estimate(&gemm("ikj", 512)).seconds;
        let bad = model.estimate(&gemm("jki", 512)).seconds;
        assert!(
            bad > good * 1.5,
            "column-major innermost ({bad}) should be clearly slower than row-major ({good})"
        );
    }

    #[test]
    fn tiling_reduces_dram_traffic_and_time() {
        // Large enough that a full row panel no longer fits the last-level
        // cache, so the untiled version pays capacity misses.
        let p = gemm("ikj", 4096);
        let nest = p.loop_nests()[0].clone();
        let tiled = tile_band(
            &nest,
            &[
                (Var::new("i"), 64),
                (Var::new("k"), 64),
                (Var::new("j"), 64),
            ],
        )
        .unwrap();
        let mut tiled_program = p.clone();
        tiled_program.body = vec![Node::Loop(tiled)];
        let model = CostModel::sequential();
        let base = model.estimate(&p);
        let opt = model.estimate(&tiled_program);
        assert!(opt.dram_bytes < base.dram_bytes);
        assert!(opt.seconds <= base.seconds);
    }

    #[test]
    fn vectorization_speeds_up_unit_stride_loops() {
        let p = gemm("ikj", 256);
        let nest = p.loop_nests()[0].clone();
        let recipe = Recipe::new(vec![Transform::Vectorize {
            iter: Var::new("j"),
        }]);
        let mut vectorized = p.clone();
        vectorized.body = recipe.apply_to_nest(&nest).unwrap();
        let model = CostModel::sequential();
        let base = model.estimate(&p).seconds;
        let vec = model.estimate(&vectorized).seconds;
        assert!(vec < base);
    }

    #[test]
    fn parallel_loops_scale_until_bandwidth_saturates() {
        let p = gemm("ikj", 512);
        let nest = p.loop_nests()[0].clone();
        let recipe = Recipe::new(vec![Transform::Parallelize {
            iter: Var::new("i"),
        }]);
        let mut parallel = p.clone();
        parallel.body = recipe.apply_to_nest(&nest).unwrap();
        let machine = MachineConfig::xeon_e5_2680v3();
        let t1 = CostModel::new(machine.clone(), 1)
            .estimate(&parallel)
            .seconds;
        let t4 = CostModel::new(machine.clone(), 4)
            .estimate(&parallel)
            .seconds;
        let t12 = CostModel::new(machine, 12).estimate(&parallel).seconds;
        assert!(t4 < t1);
        assert!(t12 <= t4);
        // Scaling is sublinear at 12 threads (bandwidth saturation).
        assert!(t12 > t1 / 12.0 * 0.9);
    }

    #[test]
    fn parallelized_reduction_pays_atomic_penalty() {
        // sum[0] += A[i] with the i loop parallelized: every update is atomic.
        let p = parse_program(
            "program reduce { param N = 100000; array A[N]; array s[1];
               #pragma parallel
               for i in 0..N { s[0] += A[i]; } }",
        )
        .unwrap();
        let serial = parse_program(
            "program reduce { param N = 100000; array A[N]; array s[1];
               for i in 0..N { s[0] += A[i]; } }",
        )
        .unwrap();
        let machine = MachineConfig::xeon_e5_2680v3();
        let par = CostModel::new(machine.clone(), 12).estimate(&p).seconds;
        let seq = CostModel::new(machine, 1).estimate(&serial).seconds;
        assert!(
            par > seq,
            "atomic reduction ({par}) must not beat serial ({seq})"
        );
    }

    #[test]
    fn blas_call_is_faster_than_naive_nest() {
        use loop_ir::prelude::*;
        let naive = gemm("ijk", 512);
        let call = BlasCall {
            kind: BlasKind::Gemm,
            output: Var::new("C"),
            inputs: vec![Var::new("A"), Var::new("B")],
            dims: vec![var("NI"), var("NJ"), var("NK")],
            alpha: fconst(1.0),
            beta: fconst(1.0),
        };
        let mut blas_program = naive.clone();
        blas_program.body = vec![Node::Call(call)];
        let model = CostModel::sequential();
        let naive_time = model.estimate(&naive).seconds;
        let blas_time = model.estimate(&blas_program).seconds;
        assert!(blas_time < naive_time / 2.0);
        // Same flops either way.
        assert!((model.estimate(&blas_program).flops - model.estimate(&naive).flops).abs() < 1.0);
    }

    #[test]
    fn triangular_nest_counts_half_the_iterations() {
        let full = parse_program(
            "program full { param N = 256; array A[N][N];
               for i in 0..N { for j in 0..N { A[i][j] = 1.0; } } }",
        )
        .unwrap();
        let tri = parse_program(
            "program tri { param N = 256; array A[N][N];
               for i in 0..N { for j in 0..i { A[i][j] = 1.0; } } }",
        )
        .unwrap();
        let model = CostModel::sequential();
        let f = model.estimate(&full);
        let t = model.estimate(&tri);
        assert!(t.dram_bytes < f.dram_bytes * 0.7);
    }

    #[test]
    fn count_flops_helper() {
        assert!((count_flops(&gemm("ijk", 10)) - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn memoized_and_unmemoized_estimates_are_identical() {
        let memoized = CostModel::new(MachineConfig::xeon_e5_2680v3(), 12);
        let plain = memoized.clone().without_memoization();
        for order in ["ijk", "ikj", "jki"] {
            let p = gemm(order, 128);
            let a = memoized.estimate(&p);
            let b = plain.estimate(&p);
            // Repeat with a warm memo: must still be bit-identical.
            let c = memoized.estimate(&p);
            assert_eq!(a, b, "order {order}");
            assert_eq!(a, c, "order {order} warm");
        }
        assert_eq!(memoized.memo_entries(), 3);
        assert_eq!(plain.memo_entries(), 0);
    }

    #[test]
    fn permuted_candidates_share_one_run_summary() {
        // All six GEMM loop orders contain the same computation, so the
        // per-nest memo holds six entries while the run-summary layer holds
        // exactly one — permuting outer loops re-prices from the cached
        // summary instead of re-deriving the affine access facts.
        let model = CostModel::sequential();
        let mut estimates = Vec::new();
        for order in ["ijk", "ikj", "jik", "jki", "kij", "kji"] {
            estimates.push(model.estimate(&gemm(order, 64)));
        }
        assert_eq!(model.memo_entries(), 6);
        assert_eq!(model.run_summary_entries(), 1);
        // The summary is order-independent input, not an order-independent
        // answer: permutations still price differently.
        let plain = model.clone().without_memoization();
        for (order, est) in ["ijk", "ikj", "jik", "jki", "kij", "kji"]
            .iter()
            .zip(&estimates)
        {
            assert_eq!(est, &plain.estimate(&gemm(order, 64)), "order {order}");
        }
        assert_eq!(plain.run_summary_entries(), 0);
    }

    #[test]
    fn memo_distinguishes_problem_sizes_and_structures() {
        let model = CostModel::sequential();
        let small = model.estimate(&gemm("ijk", 32)).seconds;
        let large = model.estimate(&gemm("ijk", 64)).seconds;
        assert!(
            large > small,
            "different params must not share memo entries"
        );
        assert_eq!(model.memo_entries(), 2);
        // A schedule annotation changes the structure, hence the entry.
        let mut annotated = gemm("ijk", 32);
        annotated.body[0].as_loop_mut().unwrap().schedule.vectorize = true;
        model.estimate(&annotated);
        assert_eq!(model.memo_entries(), 3);
    }

    #[test]
    fn simulated_cache_memoizes_with_shard_aware_keys() {
        let model = CostModel::sequential();
        let p = gemm("ijk", 24);
        let cold = model.simulated_cache(&p).unwrap();
        assert_eq!(model.simulation_entries(), 1);
        // A warm lookup returns the same shared entry, not a re-simulation.
        let warm = model.simulated_cache(&p).unwrap();
        assert!(Arc::ptr_eq(&cold, &warm));
        // A different problem size changes the environment hash and the
        // plan, so it can never alias the first entry.
        model.simulated_cache(&gemm("ijk", 32)).unwrap();
        assert_eq!(model.simulation_entries(), 2);
        // Disabling memoization still simulates, bit-identically.
        let plain = model.clone().without_memoization();
        assert_eq!(*plain.simulated_cache(&p).unwrap(), *cold);
        assert_eq!(plain.simulation_entries(), 0);
    }

    #[test]
    fn simulated_cache_counters_are_parallelism_invariant() {
        // The knob is wall-clock only: models differing in simulation
        // parallelism must produce bit-identical counters (the shard
        // layer's determinism contract, observed through the cost model).
        let p = gemm("ikj", 48);
        let sequential = CostModel::sequential();
        let baseline = sequential.simulated_cache(&p).unwrap();
        for workers in [2usize, 8] {
            let model = CostModel::sequential().with_simulation_parallelism(workers);
            assert_eq!(model.simulation_parallelism(), workers);
            assert_eq!(
                *model.simulated_cache(&p).unwrap(),
                *baseline,
                "workers {workers}"
            );
        }
    }

    #[test]
    fn assess_cache_dispatches_on_cost_mode_and_brackets_exact_counters() {
        let p = gemm("ijk", 32);
        let exact = CostModel::sequential().assess_cache(&p, false).unwrap();
        assert_eq!(exact.priced_with(), PricedWith::Exact);
        assert_eq!(exact.error_bound(), 0);

        let analytic = CostModel::sequential()
            .with_cost_mode(CostMode::Analytic)
            .assess_cache(&p, true)
            .unwrap();
        assert_eq!(analytic.priced_with(), PricedWith::Analytic);
        assert!(
            exact.l1().misses.abs_diff(analytic.l1().misses) <= analytic.error_bound(),
            "analytic L1 misses {} must bracket exact {} within {}",
            analytic.l1().misses,
            exact.l1().misses,
            analytic.error_bound()
        );
        assert!(exact.l2().misses.abs_diff(analytic.l2().misses) <= analytic.error_bound());
        assert_eq!(analytic.accesses(), exact.accesses());

        // Auto: analytic during search, exact for the final winner.
        let auto = CostModel::sequential().with_cost_mode(CostMode::Auto);
        assert_eq!(
            auto.assess_cache(&p, false).unwrap().priced_with(),
            PricedWith::Analytic
        );
        assert_eq!(
            auto.assess_cache(&p, true).unwrap().priced_with(),
            PricedWith::Exact
        );
    }

    #[test]
    fn analytic_pricings_memoize_and_count() {
        let p = gemm("ikj", 32);
        let model = CostModel::sequential().with_cost_mode(CostMode::Analytic);
        let sink = Arc::new(telemetry::CollectingRecorder::default());
        telemetry::with_recorder(sink.clone(), || {
            let first = model.assess_cache(&p, false).unwrap();
            let second = model.assess_cache(&p, false).unwrap();
            assert_eq!(first.l1(), second.l1());
        });
        assert_eq!(sink.counter_total("machine.cost.analytic_pricings"), 2);
        assert_eq!(sink.counter_total("machine.cost.exact_pricings"), 0);
        assert_eq!(sink.counter_total("machine.cost.analytic_memo_misses"), 1);
        assert_eq!(sink.counter_total("machine.cost.analytic_memo_hits"), 1);
    }

    #[test]
    fn cost_mode_parses_its_cli_spellings_round_trip() {
        for mode in [CostMode::Exact, CostMode::Analytic, CostMode::Auto] {
            assert_eq!(CostMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(CostMode::parse("fast"), None);
        assert_eq!(CostMode::default(), CostMode::Exact);
    }

    #[test]
    fn clones_share_the_memo_across_threads() {
        let model = CostModel::sequential();
        let programs: Vec<Program> = ["ijk", "ikj", "kij", "jik"]
            .iter()
            .map(|o| gemm(o, 96))
            .collect();
        std::thread::scope(|scope| {
            for chunk in programs.chunks(2) {
                let worker = model.clone();
                scope.spawn(move || {
                    for p in chunk {
                        worker.estimate(p);
                    }
                });
            }
        });
        assert_eq!(model.memo_entries(), 4);
    }
}
