//! Analytic cache costing: bounded-error miss estimates without a trace walk.
//!
//! The exact tier ([`crate::simulate_cache`]) is run-compressed and sharded,
//! but every call still pays O(distinct cache lines). For the evolutionary
//! search — which prices thousands of candidates and only needs a ranking —
//! this module derives a [`CacheEstimate`] in **O(run signatures)**: the
//! compiled access plans stream through an [`AnalyticSink`] that never
//! expands a run, folding each [`StrideRun`] into closed-form reuse
//! summaries (line-interval coverage per array, per-run line visits, stagger
//! clusters) in O(1) amortized work per run.
//!
//! # The error-bound contract
//!
//! The estimate is *not* bit-identical to the simulator — it is **provably
//! bracketed**. For each cache level the sink maintains
//!
//! * a sound **lower bound** on misses: the compulsory distinct lines, from
//!   the union of the line intervals that sub-line-stride runs fully cover
//!   (merging only overlapping or adjacent intervals, so nothing uncovered
//!   is ever counted), and
//! * a sound **upper bound**: per run, the number of times the run *enters*
//!   a line — `|last_line − first_line| + 1` for sub-line strides, the trip
//!   count otherwise. When a lockstep group has at most `assoc` lanes, at
//!   most `lanes − 1 < assoc` distinct other lines are interleaved between
//!   two consecutive accesses of a run to one line, so the line can never
//!   become the LRU victim in between and re-entries are the only possible
//!   misses. Stagger clusters (same-array lanes one sub-line stride apart
//!   within a line span) tighten this further: trailing taps only ever enter
//!   lines their leader keeps resident, so the whole cluster is charged the
//!   leader's visits plus its startup line.
//!
//! The reported miss count is a capacity interpolation clamped into
//! `[lower, upper]`, and [`CacheEstimate::error_bound`] is
//! `max(estimate − lower, upper − estimate)` — therefore the *exact* miss
//! count of either level always lies within `error_bound` of the estimate.
//! The fuzz farm's analytic oracle and `bench_pr10` hold every workload to
//! exactly this contract.

use loop_ir::program::Program;

use crate::cache::{nearest_pow2, CacheStats};
use crate::config::MachineConfig;
use crate::error::Result;
use crate::exec::CompiledProgram;
use crate::trace::{AccessSink, StrideRun, TraceEntry};

use std::collections::BTreeMap;
use std::collections::{HashMap, HashSet};

/// Cap on tracked coverage intervals: past this the sink stops inserting,
/// which only ever *weakens* the lower bound (still sound) while keeping
/// the per-run cost O(log cap).
const MAX_INTERVALS: usize = 4096;

/// Cap on memoized run-group signatures. Past this, new group shapes fold
/// directly (still correct, just not O(1) on their repeats).
const MAX_GROUP_MEMO: usize = 1 << 16;

/// The analytic tier's answer: estimated counters plus the half-width of
/// the proven bracket around the miss counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEstimate {
    /// Exact total access count (closed form over the run plans).
    pub accesses: u64,
    /// Estimated L1 counters (`misses`/`loads` carry the bracketed
    /// estimate; `hits` is `accesses − misses`).
    pub l1: CacheStats,
    /// Estimated L2 counters.
    pub l2: CacheStats,
    /// Proven half-width: the exact miss count of either level differs from
    /// the estimated one by at most this many misses.
    pub error_bound: u64,
    /// Number of distinct `(array, stride, is_write)` run signatures
    /// summarized — the quantity the analytic cost is linear in.
    pub signatures: usize,
}

impl CacheEstimate {
    /// Whether an exactly-simulated pair of per-level counters falls within
    /// the reported error bound of this estimate — the contract the fuzz
    /// oracle and the bench gates check.
    pub fn brackets(&self, exact_l1: &CacheStats, exact_l2: &CacheStats) -> bool {
        exact_l1.misses.abs_diff(self.l1.misses) <= self.error_bound
            && exact_l2.misses.abs_diff(self.l2.misses) <= self.error_bound
    }
}

/// Modeled geometry of one cache level, using the simulator's rounding
/// rules so the analytic capacity matches the simulated capacity exactly.
#[derive(Debug, Clone, Copy)]
struct LevelGeometry {
    /// Total lines the level holds (`set_count * assoc`).
    capacity_lines: u64,
    assoc: u64,
    set_count: u64,
}

impl LevelGeometry {
    fn new(capacity: usize, assoc: usize, line_bytes: u64) -> Self {
        let assoc = assoc.max(1) as u64;
        let lines = ((capacity as u64) / line_bytes).max(assoc);
        let set_count = nearest_pow2(lines / assoc);
        LevelGeometry {
            capacity_lines: set_count * assoc,
            assoc,
            set_count,
        }
    }
}

/// An [`AccessSink`] that folds the run-compressed trace into reuse
/// summaries instead of simulating it. Runs are never expanded; per-access
/// entries (the symbolic fallback for non-affine subscripts) degrade to
/// single-line inserts.
pub struct AnalyticSink {
    line_shift: u32,
    line_bytes: u64,
    l1: LevelGeometry,
    l2: LevelGeometry,
    accesses: u64,
    /// Union of fully covered line intervals, `start_line → end_line`
    /// (inclusive), non-overlapping and non-adjacent by construction.
    coverage: BTreeMap<u64, u64>,
    /// Total lines in `coverage`.
    covered: u64,
    /// Whether `coverage` hit [`MAX_INTERVALS`] and dropped inserts (the
    /// lower bound is then conservative but still sound).
    saturated: bool,
    /// Largest single super-line-stride run (its trip count is a sound
    /// compulsory-miss floor even though its lines are sparse).
    sparse_max: u64,
    /// Summed trip counts of super-line runs — a footprint contribution for
    /// the interpolated estimate (not for the bounds).
    sparse_visits: u64,
    /// Sound upper bound on L1 (and therefore L2) misses.
    upper: u64,
    /// Whether any run wrapped below address zero (its lines are unknown,
    /// voiding the fits-in-cache exactness argument).
    wrapped: bool,
    /// Distinct `(array, stride, is_write)` signatures seen.
    signatures: HashSet<(u32, i64, bool)>,
    /// Per-group-signature summaries: outer loops replay the *identical*
    /// lockstep group every iteration, and folding it again can only add
    /// the same counter deltas (its coverage inserts are idempotent — the
    /// union already contains the intervals). Keyed by the full run slice
    /// (exact equality, no hash-collision risk), so a repeat costs one hash
    /// lookup instead of a re-fold. This is what makes the sink O(run
    /// signatures), not O(loop iterations).
    group_memo: HashMap<Vec<StrideRun>, GroupDelta>,
    /// Multiplier applied to every additive delta — the product of the
    /// active [`AccessSink::begin_repeat`] factors. The emitter announces a
    /// repeat only for loops whose subtree trace is iterator-invariant, and
    /// every additive summary quantity is linear in the repetition count
    /// (coverage and signatures are idempotent, `sparse_max` is a max), so
    /// consuming the body once at scale `n` equals folding it `n` times.
    scale: u64,
    /// Open repeat factors, innermost last.
    repeat_stack: Vec<u64>,
}

/// The replayable *unit* effect of folding one run-group shape once
/// (everything [`AnalyticSink::fold_run`] mutates except the idempotent
/// coverage union and signature set).
#[derive(Clone, Copy)]
struct GroupDelta {
    accesses: u64,
    upper: u64,
    sparse_max: u64,
    sparse_visits: u64,
    wrapped: bool,
}

impl AnalyticSink {
    /// Builds a sink modeling `machine`'s hierarchy.
    pub fn new(machine: &MachineConfig) -> Self {
        let line_bytes = nearest_pow2(machine.line_bytes.max(1) as u64);
        AnalyticSink {
            line_shift: line_bytes.trailing_zeros(),
            line_bytes,
            l1: LevelGeometry::new(machine.l1_bytes, machine.l1_assoc, line_bytes),
            l2: LevelGeometry::new(machine.l2_bytes, machine.l2_assoc, line_bytes),
            accesses: 0,
            coverage: BTreeMap::new(),
            covered: 0,
            saturated: false,
            sparse_max: 0,
            sparse_visits: 0,
            upper: 0,
            wrapped: false,
            signatures: HashSet::new(),
            group_memo: HashMap::new(),
            scale: 1,
            repeat_stack: Vec::new(),
        }
    }

    /// Applies a unit group delta `factor` times in closed form.
    fn apply_delta(&mut self, d: &GroupDelta, factor: u64) {
        self.accesses += d.accesses * factor;
        self.upper += d.upper * factor;
        self.sparse_max = self.sparse_max.max(d.sparse_max);
        self.sparse_visits += d.sparse_visits * factor;
        self.wrapped |= d.wrapped;
    }

    /// Inserts the fully covered inclusive line interval `[lo, hi]`,
    /// merging with overlapping or adjacent intervals only — a gap is never
    /// bridged, so `covered` stays a sound compulsory-miss floor.
    fn cover(&mut self, mut lo: u64, mut hi: u64) {
        if self.saturated {
            return;
        }
        debug_assert!(lo <= hi);
        // Absorb every interval starting at or before `hi + 1` that reaches
        // back to `lo - 1` or later.
        loop {
            let candidate = self
                .coverage
                .range(..=hi.saturating_add(1))
                .next_back()
                .map(|(&s, &e)| (s, e));
            match candidate {
                Some((s, e)) if e.saturating_add(1) >= lo => {
                    self.coverage.remove(&s);
                    self.covered -= e - s + 1;
                    lo = lo.min(s);
                    hi = hi.max(e);
                }
                _ => break,
            }
        }
        self.coverage.insert(lo, hi);
        self.covered += hi - lo + 1;
        if self.coverage.len() >= MAX_INTERVALS {
            self.saturated = true;
        }
    }

    /// Folds one run in as part of a `lanes`-wide lockstep group,
    /// `cluster_visits` carrying the tightened charge when the run belongs
    /// to a stagger cluster (`None` for ordinary lanes).
    fn fold_run(&mut self, r: &StrideRun, lanes: u64, cluster_visits: Option<u64>) {
        if r.count == 0 {
            return;
        }
        self.accesses += r.count;
        self.signatures.insert((r.array, r.stride, r.is_write));
        let end = r.base as i64 + r.stride * (r.count as i64 - 1);
        if end < 0 {
            // Wrapping runs are rare and weird; charge the whole run.
            self.upper += r.count;
            self.wrapped = true;
            return;
        }
        let s_abs = r.stride.unsigned_abs();
        if s_abs > self.line_bytes {
            // Sparse distinct lines: every access enters a fresh line, but
            // the interval is not fully covered, so it may not join the
            // coverage union.
            self.sparse_max = self.sparse_max.max(r.count);
            self.sparse_visits += r.count;
            self.upper += r.count;
            return;
        }
        let first = r.base >> self.line_shift;
        let last = (end as u64) >> self.line_shift;
        let (lo, hi) = (first.min(last), first.max(last));
        self.cover(lo, hi);
        let visits = cluster_visits.unwrap_or(hi - lo + 1);
        self.upper += if lanes <= self.l1.assoc {
            visits
        } else {
            // Too many interleaved lanes: the LRU-victim argument fails and
            // any access may miss.
            r.count
        };
    }

    /// The modeled line size in bytes (after power-of-two rounding).
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Whether every touched line is known (coverage is complete) and the
    /// coverage intervals spread at most `assoc` lines into any one set of
    /// the level — then no line can ever be evicted, every non-first access
    /// hits, and the level's miss count is *exactly* the distinct lines.
    fn provably_fits(&self, level: &LevelGeometry) -> bool {
        if self.saturated || self.wrapped || self.sparse_visits > 0 {
            return false;
        }
        // A contiguous interval of length `len` lands `ceil(len /
        // set_count)` lines in the fullest set; intervals are independent,
        // so the per-set worst case is the sum.
        let spread: u64 = self
            .coverage
            .values()
            .zip(self.coverage.keys())
            .map(|(&end, &start)| (end - start + 1).div_ceil(level.set_count))
            .sum();
        spread <= level.assoc
    }

    /// Finalizes the summaries into a [`CacheEstimate`].
    pub fn finish(&self) -> CacheEstimate {
        let lower = self.covered.max(self.sparse_max);
        let mut upper = self.upper.max(lower);
        if self.provably_fits(&self.l1) {
            // Exactness: misses == compulsory distinct lines at L1, and
            // therefore every L2 probe is a first touch — both levels are
            // exact and the error bound collapses to zero.
            upper = lower;
        }
        let footprint = self.covered + self.sparse_visits;
        let est_l1 = interpolate(lower, upper, footprint, self.l1.capacity_lines);
        let est_l2 = interpolate(lower, upper, footprint, self.l2.capacity_lines).min(est_l1);
        let error_bound = (est_l1 - lower)
            .max(upper - est_l1)
            .max(est_l2 - lower)
            .max(upper - est_l2);
        let l1 = CacheStats {
            loads: est_l1,
            evicts: est_l1.saturating_sub(self.l1.capacity_lines),
            hits: self.accesses - est_l1,
            misses: est_l1,
        };
        let l2 = CacheStats {
            loads: est_l2,
            evicts: est_l2.saturating_sub(self.l2.capacity_lines),
            hits: est_l1 - est_l2,
            misses: est_l2,
        };
        CacheEstimate {
            accesses: self.accesses,
            l1,
            l2,
            error_bound,
            signatures: self.signatures.len(),
        }
    }
}

/// Capacity interpolation between the compulsory floor and the thrash
/// ceiling: a footprint fitting the level re-misses nothing; one dwarfing
/// it approaches the per-entry ceiling linearly in the overflow fraction.
fn interpolate(lower: u64, upper: u64, footprint: u64, capacity_lines: u64) -> u64 {
    if footprint <= capacity_lines || footprint == 0 {
        return lower;
    }
    let overflow = (footprint - capacity_lines) as f64 / footprint as f64;
    let est = lower as f64 + (upper - lower) as f64 * overflow;
    (est as u64).clamp(lower, upper)
}

impl AccessSink for AnalyticSink {
    fn access(&mut self, entry: TraceEntry) {
        self.accesses += self.scale;
        self.upper += self.scale;
        let line = entry.address >> self.line_shift;
        self.cover(line, line);
    }

    fn run(&mut self, start: u64, stride: i64, count: u64, is_write: bool) {
        // Route through the group memo so repeated single-run emissions
        // (outer-loop replays of a non-lockstep body) also fold in O(1).
        let r = StrideRun {
            base: start,
            stride,
            count,
            array: u32::MAX,
            is_write,
        };
        self.run_group(std::slice::from_ref(&r));
    }

    fn run_group(&mut self, runs: &[StrideRun]) {
        if let Some(d) = self.group_memo.get(runs).copied() {
            // An already-summarized group shape: replay its unit deltas at
            // the active repeat scale. The coverage union and signature set
            // are untouched — both are idempotent, so the state equals a
            // full re-fold's.
            self.apply_delta(&d, self.scale);
            return;
        }
        let before = (self.accesses, self.upper, self.sparse_visits, self.wrapped);
        self.fold_group(runs);
        let unit = GroupDelta {
            accesses: self.accesses - before.0,
            upper: self.upper - before.1,
            // The running max is monotone and already >= this group's own
            // contribution, so replaying it is exact.
            sparse_max: self.sparse_max,
            sparse_visits: self.sparse_visits - before.2,
            wrapped: self.wrapped && !before.3,
        };
        if self.scale > 1 {
            self.apply_delta(&unit, self.scale - 1);
        }
        if self.group_memo.len() < MAX_GROUP_MEMO {
            self.group_memo.insert(runs.to_vec(), unit);
        }
    }

    fn begin_repeat(&mut self, times: u64) -> bool {
        let times = times.max(1);
        self.repeat_stack.push(times);
        self.scale *= times;
        true
    }

    fn end_repeat(&mut self) {
        let times = self.repeat_stack.pop().unwrap_or(1);
        self.scale /= times;
    }
}

impl AnalyticSink {
    /// Folds a not-yet-memoized lockstep group lane by lane.
    fn fold_group(&mut self, runs: &[StrideRun]) {
        let lanes = runs.len() as u64;
        // Stagger clusters (the cache simulator's merge conditions): a
        // contiguous block of same-array lanes with one nonzero sub-line
        // stride and bases within a line span holds at most two adjacent
        // lines; within associativity, only the leading tap's line entries
        // (plus the startup line) can miss, so the whole cluster is charged
        // `leader visits + 1` instead of the per-lane sum.
        let mut j = 0;
        while j < runs.len() {
            let stride = runs[j].stride;
            let s_abs = stride.unsigned_abs();
            if stride == 0 || s_abs >= self.line_bytes || runs[j].count == 0 {
                self.fold_run(&runs[j], lanes, None);
                j += 1;
                continue;
            }
            let (mut lo, mut hi) = (runs[j].base, runs[j].base);
            let mut k = j + 1;
            while k < runs.len()
                && runs[k].array == runs[j].array
                && runs[k].stride == stride
                && runs[k].count == runs[j].count
            {
                let nlo = lo.min(runs[k].base);
                let nhi = hi.max(runs[k].base);
                if nhi - nlo >= self.line_bytes {
                    break;
                }
                (lo, hi) = (nlo, nhi);
                k += 1;
            }
            let tightened = if k - j >= 2 && lanes <= self.l1.assoc {
                let leader = if stride > 0 { hi } else { lo };
                let end = leader as i64 + stride * (runs[j].count as i64 - 1);
                if end >= 0 {
                    let first = leader >> self.line_shift;
                    let last = (end as u64) >> self.line_shift;
                    Some(first.abs_diff(last) + 2)
                } else {
                    // A wrapping leader voids the residency argument.
                    None
                }
            } else {
                None
            };
            match tightened {
                // Every lane still covers its own interval (the union
                // dedups); the tightened charge lands on the first lane and
                // the rest ride along for free.
                Some(charge) => {
                    for (idx, r) in runs[j..k].iter().enumerate() {
                        self.fold_run(r, lanes, Some(if idx == 0 { charge } else { 0 }));
                    }
                }
                None => {
                    for r in &runs[j..k] {
                        self.fold_run(r, lanes, None);
                    }
                }
            }
            j = k.max(j + 1);
        }
    }
}

/// Computes the analytic cache estimate of an already-lowered program.
///
/// # Errors
/// Propagates lowering/streaming errors (unbound parameters, unknown
/// arrays).
pub fn estimate_cache_compiled(
    compiled: &CompiledProgram,
    machine: &MachineConfig,
) -> Result<CacheEstimate> {
    let _span = telemetry::span("estimate_cache");
    let mut sink = AnalyticSink::new(machine);
    compiled.stream(&mut sink)?;
    Ok(sink.finish())
}

/// Lowers `program` and computes its analytic cache estimate — the
/// trace-free counterpart of [`crate::simulate_cache`].
///
/// # Errors
/// Propagates lowering/streaming errors.
pub fn estimate_cache(program: &Program, machine: &MachineConfig) -> Result<CacheEstimate> {
    estimate_cache_compiled(&CompiledProgram::lower(program)?, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::simulate_cache;
    use loop_ir::parser::parse_program;

    fn assert_bracketed(source: &str, machine: &MachineConfig) {
        let p = parse_program(source).unwrap();
        let est = estimate_cache(&p, machine).unwrap();
        let exact = simulate_cache(&p, machine).unwrap();
        assert_eq!(
            est.accesses,
            exact.accesses(),
            "{}: access counts are closed-form exact",
            p.name
        );
        assert!(
            est.brackets(&exact.l1(), &exact.l2()),
            "{}: exact misses l1={} l2={} outside estimate l1={} l2={} ± {}",
            p.name,
            exact.l1().misses,
            exact.l2().misses,
            est.l1.misses,
            est.l2.misses,
            est.error_bound
        );
    }

    #[test]
    fn estimates_bracket_exact_misses_on_directed_programs() {
        for machine in [MachineConfig::tiny_for_tests(), MachineConfig::default()] {
            for source in [
                // Streaming copy: compulsory misses only.
                "program copy { param N = 4000; array A[N]; array B[N];
                   for i in 0..N { B[i] = A[i]; } }",
                // Column-major walk: super-line strides, near-total missing.
                "program col { param N = 64; array A[N][N];
                   for j in 0..N { for i in 0..N { A[i][j] = 1.0; } } }",
                // Three-point stencil over time steps: stagger reuse.
                "program heat { param N = 512; param T = 4; array A[N]; array B[N];
                   for t in 0..T { for i in 1..N - 1 {
                     B[i] = (A[i - 1] + A[i] + A[i + 1]) * 0.33;
                   } } }",
                // GEMM: repeated sweeps, capacity effects.
                "program gemm { param N = 28; array A[N][N]; array B[N][N]; array C[N][N];
                   for i in 0..N { for j in 0..N { for k in 0..N {
                     C[i][j] += A[i][k] * B[k][j];
                   } } } }",
                // Non-affine subscript: per-access fallback entries.
                "program na { param N = 64; array A[N];
                   for i in 0..N { A[i % 7] = 1.0; } }",
                // Loop-invariant and reversal subscripts.
                "program rev { param N = 900; array A[N]; array B[N]; array C[1];
                   for i in 0..N { B[i] = A[N - 1 - i] + C[0]; } }",
            ] {
                assert_bracketed(source, &machine);
            }
        }
    }

    #[test]
    fn fitting_working_set_estimates_compulsory_misses_exactly() {
        // 16 lines of data in a 16-line L1: the estimate must equal the
        // compulsory floor and the exact simulation must agree.
        let p = parse_program(
            "program fit { param N = 128; param T = 8; array A[N];
               for t in 0..T { for i in 0..N { A[i] = A[i] + 1.0; } } }",
        )
        .unwrap();
        let machine = MachineConfig::tiny_for_tests();
        let est = estimate_cache(&p, &machine).unwrap();
        let exact = simulate_cache(&p, &machine).unwrap();
        assert_eq!(est.l1.misses, 16, "one compulsory miss per line");
        assert_eq!(exact.l1().misses, est.l1.misses);
        assert_eq!(est.error_bound, 0, "a fitting working set is exact");
    }

    #[test]
    fn coverage_union_merges_only_touching_intervals() {
        let machine = MachineConfig::tiny_for_tests();
        let mut sink = AnalyticSink::new(&machine);
        sink.cover(10, 20);
        sink.cover(40, 50);
        assert_eq!(sink.covered, 22, "a gap is never bridged");
        sink.cover(21, 39); // adjacent on both sides: one interval now
        assert_eq!(sink.covered, 41);
        assert_eq!(sink.coverage.len(), 1);
        sink.cover(12, 45); // fully contained: no change
        assert_eq!(sink.covered, 41);
    }

    #[test]
    fn signatures_count_distinct_run_shapes() {
        let p = parse_program(
            "program sig { param N = 100; array A[N]; array B[N];
               for t in 0..4 { for i in 0..N { B[i] = A[i] + A[i]; } } }",
        )
        .unwrap();
        let est = estimate_cache(&p, &MachineConfig::tiny_for_tests()).unwrap();
        // A read, B write — duplicated taps and repeated time steps fold
        // into the same signatures.
        assert_eq!(est.signatures, 2);
    }

    #[test]
    fn invariant_outer_loops_fold_once_and_match_the_iterated_fold() {
        // A wrapper that refuses the repeat protocol forces the emitter to
        // stream all T outer iterations; accepting it must give the exact
        // same estimate and streamed access count, just without the O(T)
        // walk.
        struct NoRepeat(AnalyticSink);
        impl AccessSink for NoRepeat {
            fn access(&mut self, entry: TraceEntry) {
                self.0.access(entry);
            }
            fn run(&mut self, start: u64, stride: i64, count: u64, is_write: bool) {
                self.0.run(start, stride, count, is_write);
            }
            fn run_group(&mut self, runs: &[StrideRun]) {
                self.0.run_group(runs);
            }
        }
        let p = parse_program(
            "program rep { param N = 256; param T = 1000; array A[N]; array B[N];
               for t in 0..T { for i in 0..N { B[i] = A[i] + 1.0; } } }",
        )
        .unwrap();
        let machine = MachineConfig::tiny_for_tests();
        let compiled = CompiledProgram::lower(&p).unwrap();
        let mut fast = AnalyticSink::new(&machine);
        let fast_count = compiled.stream(&mut fast).unwrap();
        let mut slow = NoRepeat(AnalyticSink::new(&machine));
        let slow_count = compiled.stream(&mut slow).unwrap();
        assert_eq!(fast_count, slow_count, "repeat scaling preserves the count");
        assert_eq!(fast_count, 1000 * 256 * 2);
        assert_eq!(fast.finish(), slow.0.finish());
    }

    #[test]
    fn estimates_are_deterministic() {
        let p = parse_program(
            "program det { param N = 300; array A[N][N];
               for i in 0..N { for j in 0..N { A[i][j] = A[i][j] * 2.0; } } }",
        )
        .unwrap();
        let machine = MachineConfig::default();
        let a = estimate_cache(&p, &machine).unwrap();
        let b = estimate_cache(&p, &machine).unwrap();
        assert_eq!(a, b);
    }
}
