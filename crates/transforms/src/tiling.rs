//! Loop tiling (blocking) of a perfectly nested loop band.

use loop_ir::expr::{cst, Expr, Var};
use loop_ir::nest::{Loop, Node};

use crate::error::{Result, TransformError};
use crate::interchange::perfect_chain;

/// Tiles the perfect chain of `nest` with the given tile sizes.
///
/// `tiles` lists `(iterator, tile_size)` pairs for the loops to tile; loops
/// of the chain that are not mentioned stay untiled (as "point" loops). The
/// result is the classical band structure: all tile loops (iterating with
/// step = tile size over the original domain, named `<iter>_t`) outside, then
/// all point loops inside, where each point loop `iter` runs over
/// `[iter_t, min(iter_t + tile, upper))`.
///
/// Array subscripts are untouched because the point loops keep their original
/// iterator names.
///
/// # Errors
/// * [`TransformError::UnknownLoop`] if a tiled iterator is not in the chain.
/// * [`TransformError::InvalidFactor`] if a tile size is smaller than 2.
/// * [`TransformError::NotPerfectlyNested`] if a tiled loop has bounds that
///   depend on another chain iterator (triangular bands are not tiled).
pub fn tile_band(nest: &Loop, tiles: &[(Var, i64)]) -> Result<Loop> {
    let chain = perfect_chain(nest);
    let chain_iters: Vec<Var> = chain.iter().map(|l| l.iter.clone()).collect();
    for (iter, size) in tiles {
        if !chain_iters.contains(iter) {
            return Err(TransformError::UnknownLoop(iter.clone()));
        }
        if *size < 2 {
            return Err(TransformError::InvalidFactor {
                iterator: iter.clone(),
                factor: *size,
            });
        }
    }
    // Reject tiling of loops with bounds depending on other chain iterators.
    for (iter, _) in tiles {
        let l = chain.iter().find(|l| &l.iter == iter).expect("checked");
        for bound in [&l.lower, &l.upper] {
            if bound.vars().iter().any(|v| chain_iters.contains(v)) {
                return Err(TransformError::NotPerfectlyNested(iter.clone()));
            }
        }
    }

    let innermost_body = chain.last().expect("chain is never empty").body.clone();
    let tile_of = |iter: &Var| tiles.iter().find(|(v, _)| v == iter).map(|(_, s)| *s);

    // Build point loops (innermost): original order, bounds clamped to the
    // tile for tiled iterators.
    let mut body = innermost_body;
    for l in chain.iter().rev() {
        let mut point = match tile_of(&l.iter) {
            Some(size) => {
                let tile_iter = Var::new(format!("{}_t", l.iter));
                let start = Expr::Var(tile_iter);
                let end = Expr::Min(
                    Box::new(start.clone() + cst(size)),
                    Box::new(l.upper.clone()),
                );
                Loop::new(l.iter.clone(), start, end, body)
            }
            None => Loop::new(l.iter.clone(), l.lower.clone(), l.upper.clone(), body),
        };
        point.step = l.step;
        point.schedule = l.schedule;
        body = vec![Node::Loop(point)];
    }

    // Build tile loops (outermost): only for tiled iterators, in original
    // order, stepping by the tile size over the original domain.
    for l in chain.iter().rev() {
        if let Some(size) = tile_of(&l.iter) {
            let tile_iter = Var::new(format!("{}_t", l.iter));
            let mut tile_loop = Loop::new(tile_iter, l.lower.clone(), l.upper.clone(), body);
            tile_loop.step = size;
            body = vec![Node::Loop(tile_loop)];
        }
    }

    match body.into_iter().next() {
        Some(Node::Loop(l)) => Ok(l),
        _ => unreachable!("tiling always produces a loop"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::prelude::*;
    use std::collections::BTreeMap;

    fn gemm_nest() -> Loop {
        let update = Computation::reduction(
            "S1",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            BinOp::Add,
            load("A", vec![var("i"), var("k")]) * load("B", vec![var("k"), var("j")]),
        );
        match for_loop(
            "i",
            cst(0),
            var("NI"),
            vec![for_loop(
                "j",
                cst(0),
                var("NJ"),
                vec![for_loop(
                    "k",
                    cst(0),
                    var("NK"),
                    vec![Node::Computation(update)],
                )],
            )],
        ) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        }
    }

    fn iter_chain(l: &Loop) -> Vec<String> {
        perfect_chain(l)
            .iter()
            .map(|x| x.iter.to_string())
            .collect()
    }

    #[test]
    fn full_band_tiling_structure() {
        let nest = gemm_nest();
        let tiled = tile_band(
            &nest,
            &[
                (Var::new("i"), 32),
                (Var::new("j"), 32),
                (Var::new("k"), 32),
            ],
        )
        .unwrap();
        assert_eq!(iter_chain(&tiled), vec!["i_t", "j_t", "k_t", "i", "j", "k"]);
        // Tile loops step by the tile size.
        assert_eq!(tiled.step, 32);
        // Point loops are bounded by min(start + tile, upper).
        let point_i = perfect_chain(&tiled)[3];
        assert!(matches!(point_i.upper, Expr::Min(_, _)));
        // The computation is untouched.
        assert_eq!(tiled.computations().len(), 1);
    }

    #[test]
    fn partial_tiling_leaves_other_loops_alone() {
        let nest = gemm_nest();
        let tiled = tile_band(&nest, &[(Var::new("k"), 64)]).unwrap();
        assert_eq!(iter_chain(&tiled), vec!["k_t", "i", "j", "k"]);
        let point_j = perfect_chain(&tiled)[2];
        assert_eq!(point_j.upper, var("NJ"));
    }

    #[test]
    fn tiled_iteration_space_is_preserved() {
        // Execute the loop structure symbolically: count iterations of the
        // innermost computation for a concrete size.
        fn count(l: &Loop, bindings: &BTreeMap<Var, i64>) -> i64 {
            fn count_nodes(nodes: &[Node], bindings: &mut BTreeMap<Var, i64>) -> i64 {
                let mut total = 0;
                for node in nodes {
                    match node {
                        Node::Computation(_) => total += 1,
                        Node::Call(_) => {}
                        Node::Loop(l) => {
                            let lo = l.lower.eval(bindings).unwrap();
                            let hi = l.upper.eval(bindings).unwrap();
                            let mut v = lo;
                            while v < hi {
                                bindings.insert(l.iter.clone(), v);
                                total += count_nodes(&l.body, bindings);
                                v += l.step;
                            }
                            bindings.remove(&l.iter);
                        }
                    }
                }
                total
            }
            let mut b = bindings.clone();
            count_nodes(&[Node::Loop(l.clone())], &mut b)
        }
        let bindings: BTreeMap<Var, i64> = [
            (Var::new("NI"), 10),
            (Var::new("NJ"), 7),
            (Var::new("NK"), 5),
        ]
        .into_iter()
        .collect();
        let nest = gemm_nest();
        let tiled = tile_band(&nest, &[(Var::new("i"), 4), (Var::new("j"), 3)]).unwrap();
        assert_eq!(count(&nest, &bindings), 10 * 7 * 5);
        assert_eq!(count(&tiled, &bindings), 10 * 7 * 5);
    }

    #[test]
    fn invalid_tile_sizes_are_rejected() {
        let nest = gemm_nest();
        assert!(matches!(
            tile_band(&nest, &[(Var::new("i"), 1)]),
            Err(TransformError::InvalidFactor { .. })
        ));
        assert!(matches!(
            tile_band(&nest, &[(Var::new("z"), 8)]),
            Err(TransformError::UnknownLoop(_))
        ));
    }

    #[test]
    fn triangular_loops_are_not_tiled() {
        let s = Computation::assign(
            "S1",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            fconst(0.0),
        );
        let nest = match for_loop(
            "i",
            cst(0),
            var("N"),
            vec![for_loop(
                "j",
                cst(0),
                var("i") + cst(1),
                vec![Node::Computation(s)],
            )],
        ) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        };
        assert!(tile_band(&nest, &[(Var::new("i"), 8)]).is_ok());
        assert!(matches!(
            tile_band(&nest, &[(Var::new("j"), 8)]),
            Err(TransformError::NotPerfectlyNested(_))
        ));
    }
}
