//! Errors produced by loop transformations.

use std::fmt;

use loop_ir::expr::Var;

/// Convenience alias for transformation results.
pub type Result<T> = std::result::Result<T, TransformError>;

/// Errors produced when a transformation cannot be applied to a loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The requested loop iterator does not exist in the nest.
    UnknownLoop(Var),
    /// The requested permutation does not cover the perfectly nested loops.
    NotAPermutation {
        /// Iterators of the perfect chain of the nest.
        expected: Vec<Var>,
        /// Iterators the caller supplied.
        found: Vec<Var>,
    },
    /// The nest is not perfectly nested deep enough for the transformation.
    NotPerfectlyNested(Var),
    /// A tile size or unroll factor must be at least 2 to have an effect.
    InvalidFactor {
        /// The loop the factor applies to.
        iterator: Var,
        /// The offending factor.
        factor: i64,
    },
    /// The two loops have different iteration domains and cannot be fused.
    DomainMismatch,
    /// A statement group index is out of bounds for distribution.
    InvalidGroup(usize),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::UnknownLoop(v) => write!(f, "no loop with iterator `{v}` in the nest"),
            TransformError::NotAPermutation { expected, found } => write!(
                f,
                "requested order {found:?} is not a permutation of the nest iterators {expected:?}"
            ),
            TransformError::NotPerfectlyNested(v) => {
                write!(f, "loop `{v}` is not part of the perfectly nested chain")
            }
            TransformError::InvalidFactor { iterator, factor } => {
                write!(f, "invalid factor {factor} for loop `{iterator}`")
            }
            TransformError::DomainMismatch => {
                write!(f, "loops have different iteration domains")
            }
            TransformError::InvalidGroup(idx) => {
                write!(f, "statement group index {idx} is out of bounds")
            }
        }
    }
}

impl std::error::Error for TransformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_iterator() {
        let err = TransformError::UnknownLoop(Var::new("i"));
        assert!(err.to_string().contains('i'));
        let err = TransformError::InvalidFactor {
            iterator: Var::new("j"),
            factor: 1,
        };
        assert!(err.to_string().contains('1'));
    }

    #[test]
    fn errors_compare() {
        assert_eq!(
            TransformError::DomainMismatch,
            TransformError::DomainMismatch
        );
        assert_ne!(
            TransformError::InvalidGroup(1),
            TransformError::InvalidGroup(2)
        );
    }
}
