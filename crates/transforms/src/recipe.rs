//! Optimization recipes: reusable sequences of loop transformations.
//!
//! The paper's transfer-tuning database stores "pairs of an embedding for the
//! loop nest and transformation sequences including loop interchange, tiling,
//! parallelization and vectorization" (§4). [`Recipe`] is that transformation
//! sequence; the `daisy` crate stores and retrieves recipes by embedding
//! similarity and applies them to normalized loop nests.

use std::fmt;

use loop_ir::expr::Var;
use loop_ir::nest::{BlasKind, Loop, Node};

use crate::annotate::{mark_parallel, mark_unroll, mark_vectorize};
use crate::error::{Result, TransformError};
use crate::fission::distribute_all;
use crate::interchange::interchange;
use crate::tiling::tile_band;

/// A single loop transformation step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Transform {
    /// Permute the perfect chain into the given iterator order.
    Interchange {
        /// New loop order, outermost first.
        order: Vec<Var>,
    },
    /// Tile the listed iterators with the given tile sizes.
    Tile {
        /// `(iterator, tile size)` pairs.
        tiles: Vec<(Var, i64)>,
    },
    /// Execute the loop with the given iterator on multiple threads.
    Parallelize {
        /// Target loop iterator.
        iter: Var,
    },
    /// Execute the loop with the given iterator with SIMD instructions.
    Vectorize {
        /// Target loop iterator.
        iter: Var,
    },
    /// Unroll the loop with the given iterator.
    Unroll {
        /// Target loop iterator.
        iter: Var,
        /// Unroll factor (≥ 2).
        factor: u32,
    },
    /// Distribute every top-level body node of the nest into its own loop.
    Fission,
}

/// Stable one-byte discriminants for [`Transform`] variants.
///
/// Binary codecs that persist recipes (the `tunestore` crate) write these
/// values to disk, so they are part of the on-disk format: never renumber an
/// existing tag, only append new variants at the end.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum TransformTag {
    /// [`Transform::Interchange`].
    Interchange = 0,
    /// [`Transform::Tile`].
    Tile = 1,
    /// [`Transform::Parallelize`].
    Parallelize = 2,
    /// [`Transform::Vectorize`].
    Vectorize = 3,
    /// [`Transform::Unroll`].
    Unroll = 4,
    /// [`Transform::Fission`].
    Fission = 5,
}

impl TransformTag {
    /// Decodes a wire byte back into a tag. Returns `None` for bytes no
    /// known variant uses (a corrupted or future-format file).
    pub fn from_wire(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(TransformTag::Interchange),
            1 => Some(TransformTag::Tile),
            2 => Some(TransformTag::Parallelize),
            3 => Some(TransformTag::Vectorize),
            4 => Some(TransformTag::Unroll),
            5 => Some(TransformTag::Fission),
            _ => None,
        }
    }
}

impl Transform {
    /// The stable wire tag of this variant.
    pub fn tag(&self) -> TransformTag {
        match self {
            Transform::Interchange { .. } => TransformTag::Interchange,
            Transform::Tile { .. } => TransformTag::Tile,
            Transform::Parallelize { .. } => TransformTag::Parallelize,
            Transform::Vectorize { .. } => TransformTag::Vectorize,
            Transform::Unroll { .. } => TransformTag::Unroll,
            Transform::Fission => TransformTag::Fission,
        }
    }
}

/// Stable byte encoding of a recipe's optional BLAS marker (`0` = none).
/// Like [`TransformTag`], these values are persisted — never renumber.
pub fn blas_to_wire(kind: Option<BlasKind>) -> u8 {
    match kind {
        None => 0,
        Some(BlasKind::Gemm) => 1,
        Some(BlasKind::Syrk) => 2,
        Some(BlasKind::Syr2k) => 3,
        Some(BlasKind::Gemv) => 4,
    }
}

/// Decodes a BLAS marker byte. Returns `None` (outer) for unknown bytes.
pub fn blas_from_wire(byte: u8) -> Option<Option<BlasKind>> {
    match byte {
        0 => Some(None),
        1 => Some(Some(BlasKind::Gemm)),
        2 => Some(Some(BlasKind::Syrk)),
        3 => Some(Some(BlasKind::Syr2k)),
        4 => Some(Some(BlasKind::Gemv)),
        _ => None,
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transform::Interchange { order } => {
                write!(f, "interchange(")?;
                for (i, v) in order.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Transform::Tile { tiles } => {
                write!(f, "tile(")?;
                for (i, (v, s)) in tiles.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}:{s}")?;
                }
                write!(f, ")")
            }
            Transform::Parallelize { iter } => write!(f, "parallelize({iter})"),
            Transform::Vectorize { iter } => write!(f, "vectorize({iter})"),
            Transform::Unroll { iter, factor } => write!(f, "unroll({iter}, {factor})"),
            Transform::Fission => write!(f, "fission"),
        }
    }
}

/// A transformation sequence, optionally ending in a BLAS idiom replacement.
///
/// When `blas` is set, the loop nest is recognized as the corresponding
/// BLAS-3 kernel and should be replaced wholesale by a library call; the
/// replacement itself is performed by the idiom-detection pass in the `daisy`
/// crate because it needs to re-derive the call arguments from the nest.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Recipe {
    /// Transformation steps applied in order.
    pub steps: Vec<Transform>,
    /// BLAS kernel this nest should be replaced with, if any.
    pub blas: Option<BlasKind>,
}

impl Recipe {
    /// The empty recipe (leaves the nest unchanged).
    pub fn identity() -> Self {
        Recipe::default()
    }

    /// A recipe consisting of the given steps.
    pub fn new(steps: Vec<Transform>) -> Self {
        Recipe { steps, blas: None }
    }

    /// A recipe that replaces the nest with a BLAS library call.
    pub fn blas(kind: BlasKind) -> Self {
        Recipe {
            steps: Vec::new(),
            blas: Some(kind),
        }
    }

    /// Appends a step.
    pub fn then(mut self, step: Transform) -> Self {
        self.steps.push(step);
        self
    }

    /// True if the recipe performs no transformation at all.
    pub fn is_identity(&self) -> bool {
        self.steps.is_empty() && self.blas.is_none()
    }

    /// Applies the transformation steps to a loop nest, returning the
    /// resulting nodes (fission can produce several sibling nests; later
    /// steps are applied to every resulting nest that contains their target
    /// iterator).
    ///
    /// The `blas` marker is *not* handled here — callers performing idiom
    /// replacement must check [`Recipe::blas`] first.
    ///
    /// # Errors
    /// Propagates the first transformation error (unknown iterator, illegal
    /// factor, non-perfect nest, …).
    pub fn apply_to_nest(&self, nest: &Loop) -> Result<Vec<Node>> {
        let mut nests: Vec<Loop> = vec![nest.clone()];
        for step in &self.steps {
            nests = self.apply_step(step, nests)?;
        }
        Ok(nests.into_iter().map(Node::Loop).collect())
    }

    fn apply_step(&self, step: &Transform, nests: Vec<Loop>) -> Result<Vec<Loop>> {
        let mut out = Vec::with_capacity(nests.len());
        let mut applied = false;
        for nest in nests {
            let iters = nest.nested_iterators();
            match step {
                Transform::Fission => {
                    out.extend(distribute_all(&nest));
                    applied = true;
                }
                Transform::Interchange { order } => {
                    if order.iter().all(|v| iters.contains(v)) {
                        out.push(interchange(&nest, order)?);
                        applied = true;
                    } else {
                        out.push(nest);
                    }
                }
                Transform::Tile { tiles } => {
                    if tiles.iter().all(|(v, _)| iters.contains(v)) {
                        out.push(tile_band(&nest, tiles)?);
                        applied = true;
                    } else {
                        out.push(nest);
                    }
                }
                Transform::Parallelize { iter } => {
                    if iters.contains(iter) {
                        out.push(mark_parallel(&nest, iter)?);
                        applied = true;
                    } else {
                        out.push(nest);
                    }
                }
                Transform::Vectorize { iter } => {
                    if iters.contains(iter) {
                        out.push(mark_vectorize(&nest, iter)?);
                        applied = true;
                    } else {
                        out.push(nest);
                    }
                }
                Transform::Unroll { iter, factor } => {
                    if iters.contains(iter) {
                        out.push(mark_unroll(&nest, iter, *factor)?);
                        applied = true;
                    } else {
                        out.push(nest);
                    }
                }
            }
        }
        if !applied {
            if let Some(iter) = step_target(step) {
                return Err(TransformError::UnknownLoop(iter));
            }
        }
        Ok(out)
    }
}

fn step_target(step: &Transform) -> Option<Var> {
    match step {
        Transform::Interchange { order } => order.first().cloned(),
        Transform::Tile { tiles } => tiles.first().map(|(v, _)| v.clone()),
        Transform::Parallelize { iter }
        | Transform::Vectorize { iter }
        | Transform::Unroll { iter, .. } => Some(iter.clone()),
        Transform::Fission => None,
    }
}

impl fmt::Display for Recipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(kind) = self.blas {
            return write!(f, "replace-with-{kind}");
        }
        if self.steps.is_empty() {
            return write!(f, "identity");
        }
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interchange::perfect_chain;
    use loop_ir::prelude::*;

    fn gemm_nest() -> Loop {
        let update = Computation::reduction(
            "S1",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            BinOp::Add,
            load("A", vec![var("i"), var("k")]) * load("B", vec![var("k"), var("j")]),
        );
        match for_loop(
            "i",
            cst(0),
            var("NI"),
            vec![for_loop(
                "j",
                cst(0),
                var("NJ"),
                vec![for_loop(
                    "k",
                    cst(0),
                    var("NK"),
                    vec![Node::Computation(update)],
                )],
            )],
        ) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        }
    }

    #[test]
    fn typical_gemm_recipe() {
        // tile all three loops, parallelize the outer tile loop, vectorize j.
        let recipe = Recipe::new(vec![
            Transform::Tile {
                tiles: vec![
                    (Var::new("i"), 32),
                    (Var::new("j"), 32),
                    (Var::new("k"), 32),
                ],
            },
            Transform::Parallelize {
                iter: Var::new("i_t"),
            },
            Transform::Vectorize {
                iter: Var::new("j"),
            },
        ]);
        let out = recipe.apply_to_nest(&gemm_nest()).unwrap();
        assert_eq!(out.len(), 1);
        let nest = out[0].as_loop().unwrap();
        assert_eq!(nest.iter, Var::new("i_t"));
        assert!(nest.schedule.parallel);
        let chain = perfect_chain(nest);
        let j_point = chain.iter().find(|l| l.iter == Var::new("j")).unwrap();
        assert!(j_point.schedule.vectorize);
    }

    #[test]
    fn interchange_then_parallelize() {
        let recipe = Recipe::new(vec![
            Transform::Interchange {
                order: vec![Var::new("j"), Var::new("k"), Var::new("i")],
            },
            Transform::Parallelize {
                iter: Var::new("j"),
            },
        ]);
        let out = recipe.apply_to_nest(&gemm_nest()).unwrap();
        let nest = out[0].as_loop().unwrap();
        assert_eq!(nest.iter, Var::new("j"));
        assert!(nest.schedule.parallel);
    }

    #[test]
    fn fission_recipe_produces_multiple_nests() {
        let s1 = Computation::assign("A1", ArrayRef::new("X", vec![var("i")]), fconst(0.0));
        let s2 = Computation::assign("A2", ArrayRef::new("Y", vec![var("i")]), fconst(1.0));
        let nest = match for_loop(
            "i",
            cst(0),
            var("N"),
            vec![Node::Computation(s1), Node::Computation(s2)],
        ) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        };
        let recipe = Recipe::new(vec![
            Transform::Fission,
            Transform::Vectorize {
                iter: Var::new("i"),
            },
        ]);
        let out = recipe.apply_to_nest(&nest).unwrap();
        assert_eq!(out.len(), 2);
        // the vectorize step applies to every resulting nest containing i.
        assert!(out.iter().all(|n| n.as_loop().unwrap().schedule.vectorize));
    }

    #[test]
    fn unknown_target_is_an_error() {
        let recipe = Recipe::new(vec![Transform::Parallelize {
            iter: Var::new("zzz"),
        }]);
        assert!(matches!(
            recipe.apply_to_nest(&gemm_nest()),
            Err(TransformError::UnknownLoop(_))
        ));
    }

    #[test]
    fn blas_recipe_is_not_applied_structurally() {
        let recipe = Recipe::blas(BlasKind::Gemm);
        assert_eq!(recipe.blas, Some(BlasKind::Gemm));
        assert!(!recipe.is_identity());
        // apply_to_nest ignores the marker and returns the nest unchanged.
        let out = recipe.apply_to_nest(&gemm_nest()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].as_loop().unwrap(), &gemm_nest());
    }

    #[test]
    fn identity_recipe() {
        let recipe = Recipe::identity();
        assert!(recipe.is_identity());
        let out = recipe.apply_to_nest(&gemm_nest()).unwrap();
        assert_eq!(out[0].as_loop().unwrap(), &gemm_nest());
        assert_eq!(recipe.to_string(), "identity");
    }

    #[test]
    fn wire_tags_round_trip() {
        let steps = [
            Transform::Interchange { order: vec![] },
            Transform::Tile { tiles: vec![] },
            Transform::Parallelize {
                iter: Var::new("i"),
            },
            Transform::Vectorize {
                iter: Var::new("i"),
            },
            Transform::Unroll {
                iter: Var::new("i"),
                factor: 2,
            },
            Transform::Fission,
        ];
        for step in &steps {
            let tag = step.tag();
            assert_eq!(TransformTag::from_wire(tag as u8), Some(tag));
        }
        assert_eq!(TransformTag::from_wire(200), None);
        for kind in [
            None,
            Some(BlasKind::Gemm),
            Some(BlasKind::Syrk),
            Some(BlasKind::Syr2k),
            Some(BlasKind::Gemv),
        ] {
            assert_eq!(blas_from_wire(blas_to_wire(kind)), Some(kind));
        }
        assert_eq!(blas_from_wire(99), None);
    }

    #[test]
    fn display_lists_steps() {
        let recipe = Recipe::new(vec![
            Transform::Interchange {
                order: vec![Var::new("i"), Var::new("k"), Var::new("j")],
            },
            Transform::Tile {
                tiles: vec![(Var::new("i"), 16)],
            },
            Transform::Unroll {
                iter: Var::new("k"),
                factor: 4,
            },
        ]);
        let text = recipe.to_string();
        assert!(text.contains("interchange(i, k, j)"));
        assert!(text.contains("tile(i:16)"));
        assert!(text.contains("unroll(k, 4)"));
        assert_eq!(
            Recipe::blas(BlasKind::Syrk).to_string(),
            "replace-with-dsyrk"
        );
    }
}
