//! Loop fusion: merging two sibling loops with identical iteration domains.
//!
//! Fusion is used by the CLOUDSC case study (§5.1): after maximal fission the
//! optimization recipe "iteratively fuses all one-to-one producer-consumer
//! relations between loop nests", shortening the reuse distance of
//! intermediate arrays.

use loop_ir::expr::Expr;
use loop_ir::nest::{Loop, Node};
use loop_ir::visit::for_each_computation_mut;

use crate::error::{Result, TransformError};

/// Fuses two sibling loops into one.
///
/// The second loop's iterator is renamed to the first loop's iterator in all
/// its statements, and the bodies are concatenated (first body, then second
/// body). The schedules are merged conservatively: the fused loop is parallel
/// or vectorized only if both inputs were.
///
/// # Errors
/// Returns [`TransformError::DomainMismatch`] if the loops have different
/// bounds or steps. Legality with respect to dependences must be checked by
/// the caller (`dependence::can_fuse_siblings`).
pub fn fuse(first: &Loop, second: &Loop) -> Result<Loop> {
    if first.lower != second.lower || first.upper != second.upper || first.step != second.step {
        return Err(TransformError::DomainMismatch);
    }
    let mut fused_body = first.body.clone();
    let mut second_body = second.body.clone();
    if second.iter != first.iter {
        let replacement = Expr::Var(first.iter.clone());
        for_each_computation_mut(&mut second_body, &mut |c| {
            *c = c.clone().rename_via(&second.iter, &replacement);
        });
        rename_loop_bounds(&mut second_body, &second.iter, &replacement);
    }
    fused_body.extend(second_body);
    let mut fused = Loop::new(
        first.iter.clone(),
        first.lower.clone(),
        first.upper.clone(),
        fused_body,
    );
    fused.step = first.step;
    fused.schedule.parallel = first.schedule.parallel && second.schedule.parallel;
    fused.schedule.vectorize = first.schedule.vectorize && second.schedule.vectorize;
    fused.schedule.unroll = 1;
    Ok(fused)
}

/// Iteratively fuses adjacent sibling loop nests connected by a one-to-one
/// producer-consumer dependence, the optimization recipe of the paper's
/// CLOUDSC case study (§5.1): after maximal fission, loops whose results feed
/// directly into the next loop are merged again so intermediate values stay
/// in cache (Fig. 10b).
///
/// Fusion is applied to every loop body (and the program's top level) until
/// no more adjacent pair can be fused legally.
pub fn fuse_producer_consumers(program: &loop_ir::Program) -> loop_ir::Program {
    let graph = dependence::analyze(program);
    let mut out = program.clone();
    fuse_siblings_in(&mut out.body, &graph);
    out
}

fn fuse_siblings_in(nodes: &mut Vec<Node>, graph: &dependence::DependenceGraph) {
    // Depth first: fuse inside children before fusing the children together.
    for node in nodes.iter_mut() {
        if let Node::Loop(l) = node {
            fuse_siblings_in(&mut l.body, graph);
        }
    }
    let mut index = 0;
    while index + 1 < nodes.len() {
        let fused = match (&nodes[index], &nodes[index + 1]) {
            (Node::Loop(first), Node::Loop(second)) => {
                let connected = first.computations().iter().any(|p| {
                    second
                        .computations()
                        .iter()
                        .any(|c| graph.connected(p.id, c.id))
                });
                if connected && dependence::can_fuse_siblings(graph, first, second) {
                    fuse(first, second).ok()
                } else {
                    None
                }
            }
            _ => None,
        };
        match fused {
            Some(merged) => {
                nodes[index] = Node::Loop(merged);
                nodes.remove(index + 1);
                // Stay on the same index: the merged loop may fuse with the
                // next sibling as well.
            }
            None => index += 1,
        }
    }
}

/// Renames an iterator inside the bounds of nested loops (needed when the
/// second loop's body contains loops whose bounds reference its iterator).
fn rename_loop_bounds(nodes: &mut [Node], from: &loop_ir::expr::Var, to: &Expr) {
    for node in nodes {
        if let Node::Loop(l) = node {
            l.lower = l.lower.substitute(from, to);
            l.upper = l.upper.substitute(from, to);
            rename_loop_bounds(&mut l.body, from, to);
        }
    }
}

/// Extension helper: renaming through an arbitrary expression (not just a
/// variable), used by [`fuse`].
trait RenameVia {
    fn rename_via(self, from: &loop_ir::expr::Var, to: &Expr) -> Self;
}

impl RenameVia for loop_ir::nest::Computation {
    fn rename_via(self, from: &loop_ir::expr::Var, to: &Expr) -> Self {
        loop_ir::nest::Computation {
            id: self.id,
            name: self.name,
            target: self.target.substitute(from, to),
            reduction: self.reduction,
            value: self.value.substitute_index(from, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::prelude::*;

    fn producer() -> Loop {
        let s = Computation::assign(
            "P",
            ArrayRef::new("B", vec![var("i")]),
            load("A", vec![var("i")]) * fconst(2.0),
        );
        match for_loop("i", cst(0), var("N"), vec![Node::Computation(s)]) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        }
    }

    fn consumer(iter: &str) -> Loop {
        let s = Computation::assign(
            "C",
            ArrayRef::new("D", vec![var(iter)]),
            load("B", vec![var(iter)]) + fconst(1.0),
        );
        match for_loop(iter, cst(0), var("N"), vec![Node::Computation(s)]) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        }
    }

    #[test]
    fn fusion_concatenates_bodies_in_order() {
        let fused = fuse(&producer(), &consumer("j")).unwrap();
        assert_eq!(fused.body.len(), 2);
        let names: Vec<&str> = fused
            .computations()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["P", "C"]);
    }

    #[test]
    fn fusion_renames_second_iterator() {
        let fused = fuse(&producer(), &consumer("j")).unwrap();
        let consumer_comp = fused.computations()[1].clone();
        assert!(consumer_comp.referenced_vars().contains(&Var::new("i")));
        assert!(!consumer_comp.referenced_vars().contains(&Var::new("j")));
    }

    #[test]
    fn fusion_with_same_iterator_name() {
        let fused = fuse(&producer(), &consumer("i")).unwrap();
        assert_eq!(fused.computations().len(), 2);
        assert_eq!(fused.iter, Var::new("i"));
    }

    #[test]
    fn domain_mismatch_is_rejected() {
        let mut shorter = consumer("j");
        shorter.upper = cst(4);
        assert_eq!(
            fuse(&producer(), &shorter).unwrap_err(),
            TransformError::DomainMismatch
        );
        let mut strided = consumer("j");
        strided.step = 2;
        assert_eq!(
            fuse(&producer(), &strided).unwrap_err(),
            TransformError::DomainMismatch
        );
    }

    #[test]
    fn schedules_merge_conservatively() {
        let mut a = producer();
        a.schedule.parallel = true;
        let mut b = consumer("j");
        b.schedule.parallel = true;
        b.schedule.vectorize = true;
        let fused = fuse(&a, &b).unwrap();
        assert!(fused.schedule.parallel);
        assert!(!fused.schedule.vectorize);
    }

    #[test]
    fn nested_bounds_are_renamed() {
        // second loop: for j { for k in 0..j { D[j] += B[k] } }
        let s = Computation::reduction(
            "C",
            ArrayRef::new("D", vec![var("j")]),
            BinOp::Add,
            load("B", vec![var("k")]),
        );
        let inner = for_loop("k", cst(0), var("j"), vec![Node::Computation(s)]);
        let second = match for_loop("j", cst(0), var("N"), vec![inner]) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        };
        let fused = fuse(&producer(), &second).unwrap();
        let inner_loop = fused.body[1].as_loop().unwrap();
        assert_eq!(inner_loop.upper, var("i"));
    }
}
