//! Schedule annotations: parallelization, vectorization and unrolling marks.

use loop_ir::expr::Var;
use loop_ir::nest::Loop;

use crate::error::{Result, TransformError};

/// Marks the loop with iterator `iter` inside `nest` as parallel.
///
/// # Errors
/// Returns [`TransformError::UnknownLoop`] if the iterator is not found.
pub fn mark_parallel(nest: &Loop, iter: &Var) -> Result<Loop> {
    annotate(nest, iter, |l| l.schedule.parallel = true)
}

/// Marks the loop with iterator `iter` inside `nest` for SIMD execution.
///
/// # Errors
/// Returns [`TransformError::UnknownLoop`] if the iterator is not found.
pub fn mark_vectorize(nest: &Loop, iter: &Var) -> Result<Loop> {
    annotate(nest, iter, |l| l.schedule.vectorize = true)
}

/// Sets the unroll factor of the loop with iterator `iter` inside `nest`.
///
/// # Errors
/// Returns [`TransformError::UnknownLoop`] if the iterator is not found, or
/// [`TransformError::InvalidFactor`] for factors below 2.
pub fn mark_unroll(nest: &Loop, iter: &Var, factor: u32) -> Result<Loop> {
    if factor < 2 {
        return Err(TransformError::InvalidFactor {
            iterator: iter.clone(),
            factor: i64::from(factor),
        });
    }
    annotate(nest, iter, |l| l.schedule.unroll = factor)
}

fn annotate(nest: &Loop, iter: &Var, f: impl Fn(&mut Loop)) -> Result<Loop> {
    let mut out = nest.clone();
    if apply(&mut out, iter, &f) {
        Ok(out)
    } else {
        Err(TransformError::UnknownLoop(iter.clone()))
    }
}

fn apply(l: &mut Loop, iter: &Var, f: &impl Fn(&mut Loop)) -> bool {
    if &l.iter == iter {
        f(l);
        return true;
    }
    for node in &mut l.body {
        if let loop_ir::nest::Node::Loop(inner) = node {
            if apply(inner, iter, f) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::prelude::*;

    fn nest() -> Loop {
        let s = Computation::assign(
            "S1",
            ArrayRef::new("A", vec![var("i"), var("j")]),
            fconst(0.0),
        );
        match for_loop(
            "i",
            cst(0),
            var("N"),
            vec![for_loop("j", cst(0), var("N"), vec![Node::Computation(s)])],
        ) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        }
    }

    #[test]
    fn parallel_mark_targets_named_loop() {
        let marked = mark_parallel(&nest(), &Var::new("i")).unwrap();
        assert!(marked.schedule.parallel);
        assert!(!marked.body[0].as_loop().unwrap().schedule.parallel);
    }

    #[test]
    fn vectorize_mark_targets_inner_loop() {
        let marked = mark_vectorize(&nest(), &Var::new("j")).unwrap();
        assert!(!marked.schedule.vectorize);
        assert!(marked.body[0].as_loop().unwrap().schedule.vectorize);
    }

    #[test]
    fn unroll_requires_factor_of_at_least_two() {
        assert!(matches!(
            mark_unroll(&nest(), &Var::new("j"), 1),
            Err(TransformError::InvalidFactor { .. })
        ));
        let marked = mark_unroll(&nest(), &Var::new("j"), 8).unwrap();
        assert_eq!(marked.body[0].as_loop().unwrap().schedule.unroll, 8);
    }

    #[test]
    fn unknown_loop_is_reported() {
        assert_eq!(
            mark_parallel(&nest(), &Var::new("z")).unwrap_err(),
            TransformError::UnknownLoop(Var::new("z"))
        );
    }

    #[test]
    fn original_nest_is_untouched() {
        let original = nest();
        let _ = mark_parallel(&original, &Var::new("i")).unwrap();
        assert!(!original.schedule.parallel);
    }
}
