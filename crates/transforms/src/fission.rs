//! Loop distribution (fission): splitting the body of a loop into separate
//! loops over the same iteration domain.
//!
//! This is the primitive behind the paper's *maximal loop fission*
//! normalization criterion (§2.1): computations without mutual dependences
//! are divided across copies of the enclosing loop nest.

use loop_ir::nest::{Loop, Node};

use crate::error::{Result, TransformError};

/// Distributes the body of `nest` into one loop per group.
///
/// `groups` lists, for every new loop, the indices of the body nodes it
/// receives (in their original relative order). Groups must cover disjoint
/// indices; indices not mentioned in any group are dropped, which callers
/// should avoid — [`distribute_all`] builds the common "one node per group"
/// split.
///
/// The caller is responsible for legality (see `dependence::can_distribute`
/// and `dependence::sccs_of_body`) and for ordering groups topologically.
///
/// # Errors
/// Returns [`TransformError::InvalidGroup`] if a group references an index
/// outside the body.
pub fn distribute(nest: &Loop, groups: &[Vec<usize>]) -> Result<Vec<Loop>> {
    let mut out = Vec::with_capacity(groups.len());
    for group in groups {
        let mut body = Vec::with_capacity(group.len());
        for &idx in group {
            let node = nest
                .body
                .get(idx)
                .ok_or(TransformError::InvalidGroup(idx))?;
            body.push(node.clone());
        }
        let mut l = Loop::new(
            nest.iter.clone(),
            nest.lower.clone(),
            nest.upper.clone(),
            body,
        );
        l.step = nest.step;
        l.schedule = nest.schedule;
        out.push(l);
    }
    Ok(out)
}

/// Distributes every body node of `nest` into its own loop, preserving order.
pub fn distribute_all(nest: &Loop) -> Vec<Loop> {
    let groups: Vec<Vec<usize>> = (0..nest.body.len()).map(|i| vec![i]).collect();
    distribute(nest, &groups).expect("indices are in range by construction")
}

/// Wraps the distributed loops back into nodes, a convenience for rebuilding
/// a parent body.
pub fn distribute_to_nodes(nest: &Loop, groups: &[Vec<usize>]) -> Result<Vec<Node>> {
    Ok(distribute(nest, groups)?
        .into_iter()
        .map(Node::Loop)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::prelude::*;

    /// The paper's Figure 3a: two independent computations in one loop nest.
    fn figure3a_nest() -> Loop {
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("B", vec![var("i"), var("j")]),
            load("A", vec![var("i"), var("j")]) * fconst(2.0),
        );
        let s2 = Computation::assign(
            "S2",
            ArrayRef::new("D", vec![var("j"), var("i")]),
            load("C", vec![var("j"), var("i")]) + fconst(1.0),
        );
        let inner = for_loop(
            "j",
            cst(0),
            var("M"),
            vec![Node::Computation(s1), Node::Computation(s2)],
        );
        match for_loop("i", cst(0), var("N"), vec![inner]) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        }
    }

    #[test]
    fn distribute_all_splits_every_node() {
        let nest = figure3a_nest();
        let inner = nest.body[0].as_loop().unwrap();
        let split = distribute_all(inner);
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].computations()[0].name, "S1");
        assert_eq!(split[1].computations()[0].name, "S2");
        // Both copies keep the original iteration domain.
        for l in &split {
            assert_eq!(l.iter, Var::new("j"));
            assert_eq!(l.upper, var("M"));
        }
    }

    #[test]
    fn distribute_preserves_header_properties() {
        let mut nest = figure3a_nest();
        nest.step = 4;
        nest.schedule.parallel = true;
        let split = distribute_all(&nest);
        assert_eq!(split.len(), 1);
        assert_eq!(split[0].step, 4);
        assert!(split[0].schedule.parallel);
    }

    #[test]
    fn grouped_distribution_keeps_groups_together() {
        let s = |name: &str, arr: &str| {
            Node::Computation(Computation::assign(
                name,
                ArrayRef::new(arr, vec![var("i")]),
                fconst(0.0),
            ))
        };
        let nest = match for_loop(
            "i",
            cst(0),
            var("N"),
            vec![s("S1", "A"), s("S2", "B"), s("S3", "D")],
        ) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        };
        let split = distribute(&nest, &[vec![0, 2], vec![1]]).unwrap();
        assert_eq!(split.len(), 2);
        let names: Vec<String> = split[0]
            .computations()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(names, vec!["S1", "S3"]);
        assert_eq!(split[1].computations()[0].name, "S2");
    }

    #[test]
    fn out_of_range_group_is_rejected() {
        let nest = figure3a_nest();
        let err = distribute(&nest, &[vec![0], vec![5]]).unwrap_err();
        assert_eq!(err, TransformError::InvalidGroup(5));
    }

    #[test]
    fn distribute_to_nodes_wraps_loops() {
        let nest = figure3a_nest();
        let nodes = distribute_to_nodes(&nest, &[vec![0]]).unwrap();
        assert_eq!(nodes.len(), 1);
        assert!(nodes[0].as_loop().is_some());
    }
}
