//! Loop interchange (permutation of a perfectly nested loop chain).

use loop_ir::expr::Var;
use loop_ir::nest::{Loop, Node};

use crate::error::{Result, TransformError};

/// Returns the loops of the *perfect chain* of a nest: starting at the root,
/// follow bodies that consist of exactly one loop. The chain ends at the
/// first loop whose body is not a single loop.
///
/// These are the loops that can be freely reordered by [`interchange`]
/// (subject to dependence legality).
pub fn perfect_chain(nest: &Loop) -> Vec<&Loop> {
    let mut chain = vec![nest];
    let mut current = nest;
    while let [Node::Loop(inner)] = current.body.as_slice() {
        chain.push(inner);
        current = inner;
    }
    chain
}

/// Permutes the perfect chain of `nest` into the given iterator order
/// (outermost first) and returns the new nest.
///
/// The loop headers (bounds, steps, schedules) travel with their iterators;
/// the body of the innermost chain loop is left untouched, so all array
/// subscripts remain valid.
///
/// # Errors
/// Returns [`TransformError::NotAPermutation`] if `new_order` is not a
/// permutation of the chain's iterators. Bounds that depend on an outer
/// iterator (triangular domains) reject any order that would hoist the
/// dependent loop above its bound's definition, reported as
/// [`TransformError::NotPerfectlyNested`].
pub fn interchange(nest: &Loop, new_order: &[Var]) -> Result<Loop> {
    let chain = perfect_chain(nest);
    let chain_iters: Vec<Var> = chain.iter().map(|l| l.iter.clone()).collect();
    {
        let mut a = chain_iters.clone();
        let mut b = new_order.to_vec();
        a.sort();
        b.sort();
        if a != b {
            return Err(TransformError::NotAPermutation {
                expected: chain_iters,
                found: new_order.to_vec(),
            });
        }
    }
    // Reject orders that would evaluate a bound before the iterator it
    // depends on is defined (e.g. triangular nests `for i { for j in 0..i }`
    // cannot hoist j above i).
    for (pos, iter) in new_order.iter().enumerate() {
        let l = chain
            .iter()
            .find(|l| &l.iter == iter)
            .expect("iterator checked to be in the chain");
        for bound in [&l.lower, &l.upper] {
            for v in bound.vars() {
                if chain_iters.contains(&v) && !new_order[..pos].contains(&v) {
                    return Err(TransformError::NotPerfectlyNested(iter.clone()));
                }
            }
        }
    }

    let innermost_body = chain.last().expect("chain is never empty").body.clone();
    // Rebuild from the innermost loop outwards.
    let mut body = innermost_body;
    for iter in new_order.iter().rev() {
        let template = chain
            .iter()
            .find(|l| &l.iter == iter)
            .expect("iterator checked to be in the chain");
        let mut rebuilt = Loop::new(
            template.iter.clone(),
            template.lower.clone(),
            template.upper.clone(),
            body,
        );
        rebuilt.step = template.step;
        rebuilt.schedule = template.schedule;
        body = vec![Node::Loop(rebuilt)];
    }
    match body.into_iter().next() {
        Some(Node::Loop(l)) => Ok(l),
        _ => unreachable!("interchange always rebuilds at least one loop"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::prelude::*;

    fn gemm_nest() -> Loop {
        let update = Computation::reduction(
            "S1",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            BinOp::Add,
            load("A", vec![var("i"), var("k")]) * load("B", vec![var("k"), var("j")]),
        );
        match for_loop(
            "i",
            cst(0),
            var("NI"),
            vec![for_loop(
                "j",
                cst(0),
                var("NJ"),
                vec![for_loop(
                    "k",
                    cst(0),
                    var("NK"),
                    vec![Node::Computation(update)],
                )],
            )],
        ) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        }
    }

    #[test]
    fn chain_of_perfect_nest() {
        let nest = gemm_nest();
        let chain = perfect_chain(&nest);
        let iters: Vec<&str> = chain.iter().map(|l| l.iter.as_str()).collect();
        assert_eq!(iters, vec!["i", "j", "k"]);
    }

    #[test]
    fn chain_stops_at_imperfect_level() {
        let mut nest = gemm_nest();
        nest.body.push(Node::Computation(Computation::assign(
            "S2",
            ArrayRef::new("C", vec![var("i"), cst(0)]),
            fconst(0.0),
        )));
        let chain = perfect_chain(&nest);
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn interchange_reorders_headers_keeps_body() {
        let nest = gemm_nest();
        let permuted = interchange(&nest, &[Var::new("k"), Var::new("i"), Var::new("j")]).unwrap();
        assert_eq!(permuted.iter.as_str(), "k");
        assert_eq!(permuted.upper, var("NK"));
        let inner = permuted.body[0].as_loop().unwrap();
        assert_eq!(inner.iter.as_str(), "i");
        let innermost = inner.body[0].as_loop().unwrap();
        assert_eq!(innermost.iter.as_str(), "j");
        // The computation is untouched.
        assert_eq!(permuted.computations().len(), 1);
        assert_eq!(
            permuted.computations()[0].target,
            ArrayRef::new("C", vec![var("i"), var("j")])
        );
    }

    #[test]
    fn interchange_preserves_schedule_and_step() {
        let mut nest = gemm_nest();
        nest.schedule.parallel = true;
        nest.step = 2;
        let permuted = interchange(&nest, &[Var::new("j"), Var::new("i"), Var::new("k")]).unwrap();
        // The i loop keeps its annotations wherever it lands.
        let inner = permuted.body[0].as_loop().unwrap();
        assert_eq!(inner.iter.as_str(), "i");
        assert!(inner.schedule.parallel);
        assert_eq!(inner.step, 2);
    }

    #[test]
    fn identity_permutation_is_a_no_op() {
        let nest = gemm_nest();
        let same = interchange(&nest, &[Var::new("i"), Var::new("j"), Var::new("k")]).unwrap();
        assert_eq!(same, nest);
    }

    #[test]
    fn non_permutation_is_rejected() {
        let nest = gemm_nest();
        let err = interchange(&nest, &[Var::new("i"), Var::new("j")]).unwrap_err();
        assert!(matches!(err, TransformError::NotAPermutation { .. }));
        let err = interchange(&nest, &[Var::new("i"), Var::new("j"), Var::new("z")]).unwrap_err();
        assert!(matches!(err, TransformError::NotAPermutation { .. }));
    }

    #[test]
    fn triangular_bound_restricts_orders() {
        // for i { for j in 0..i+1 { S } } — j cannot be hoisted above i.
        let s = Computation::assign(
            "S1",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            fconst(0.0),
        );
        let nest = match for_loop(
            "i",
            cst(0),
            var("N"),
            vec![for_loop(
                "j",
                cst(0),
                var("i") + cst(1),
                vec![Node::Computation(s)],
            )],
        ) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        };
        assert!(interchange(&nest, &[Var::new("i"), Var::new("j")]).is_ok());
        let err = interchange(&nest, &[Var::new("j"), Var::new("i")]).unwrap_err();
        assert_eq!(err, TransformError::NotPerfectlyNested(Var::new("j")));
    }
}
