//! # transforms — loop transformations and optimization recipes
//!
//! The daisy auto-scheduler of the paper optimizes normalized loop nests by
//! applying *transformation sequences* drawn from a database: "loop
//! interchange, tiling, parallelization and vectorization" (§4). This crate
//! implements those transformations on the loop-nest IR, plus the two
//! structural primitives the normalization passes are built from
//! (distribution/fission and fusion), and the [`recipe`] module that packages
//! them into reusable sequences.
//!
//! All transformations are pure: they take loops or programs by reference and
//! return transformed copies, leaving legality decisions to the caller (the
//! `dependence` crate answers those questions).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod annotate;
pub mod error;
pub mod fission;
pub mod fusion;
pub mod interchange;
pub mod recipe;
pub mod tiling;

pub use annotate::{mark_parallel, mark_unroll, mark_vectorize};
pub use error::{Result, TransformError};
pub use fission::{distribute, distribute_all};
pub use fusion::{fuse, fuse_producer_consumers};
pub use interchange::{interchange, perfect_chain};
pub use recipe::{blas_from_wire, blas_to_wire, Recipe, Transform, TransformTag};
pub use tiling::tile_band;
