//! Replays every committed corpus case through the full oracle battery.
//!
//! The corpus under `fuzz/corpus/` holds generated programs that graduated
//! because their structural feature set was new. Each is a regression
//! test: it once exercised a pipeline shape end to end, and must keep
//! passing every differential oracle bit for bit.

use fuzz::campaign::check_program;
use fuzz::corpus::{default_corpus_dir, features_of, load_corpus};
use fuzz::oracle::OracleSelection;

#[test]
fn every_committed_corpus_case_passes_every_oracle() {
    let dir = default_corpus_dir();
    let cases = load_corpus(&dir).expect("corpus loads");
    assert!(
        !cases.is_empty(),
        "fuzz/corpus must contain committed cases (looked in {})",
        dir.display()
    );
    for case in &cases {
        let verdict = check_program(&case.program, &OracleSelection::default());
        assert!(
            verdict.is_pass(),
            "{} regressed: {:?}",
            case.path.display(),
            verdict
        );
    }
}

#[test]
fn corpus_cases_cover_distinct_feature_sets() {
    let cases = load_corpus(&default_corpus_dir()).expect("corpus loads");
    let keys: std::collections::BTreeSet<String> = cases
        .iter()
        .map(|c| {
            features_of(&c.program)
                .into_iter()
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    assert_eq!(
        keys.len(),
        cases.len(),
        "two corpus files share a feature set; one is redundant"
    );
}

#[test]
fn corpus_headers_record_the_generating_seed() {
    let cases = load_corpus(&default_corpus_dir()).expect("corpus loads");
    for case in &cases {
        let text = std::fs::read_to_string(&case.path).expect("readable");
        assert!(
            text.starts_with("// daisyfuzz: seed=0x"),
            "{} is missing its seed header",
            case.path.display()
        );
    }
}
