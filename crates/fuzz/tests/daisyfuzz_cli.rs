//! Contract tests for the `daisyfuzz` binary: exit codes, one-line usage
//! diagnostics, the JSON report, and the injected-fault path that proves
//! the farm catches, shrinks and reports a real divergence end to end.

use std::process::{Command, Output};

fn daisyfuzz(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_daisyfuzz"))
        .args(args)
        .output()
        .expect("daisyfuzz runs")
}

fn stderr_line(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr)
        .trim_end()
        .to_string()
}

#[test]
fn usage_errors_are_one_line_and_exit_2() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["run", "--budget"][..],
        &["run", "--budget", "many"][..],
        &["run", "--inject", "gamma-rays"][..],
        &["run", "--frobnicate", "1"][..],
        &["replay"][..],
        &["corpus"][..],
        &["corpus", "demote"][..],
        &["store", "--inject", "no-power"][..],
        &["store", "--budget", "many"][..],
        &["store", "extra"][..],
    ] {
        let output = daisyfuzz(args);
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?} must exit 2, stderr: {}",
            stderr_line(&output)
        );
        let err = stderr_line(&output);
        assert!(
            err.starts_with("daisyfuzz: ") && !err.contains('\n'),
            "args {args:?} must produce a one-line daisyfuzz: diagnostic, got {err:?}"
        );
    }
}

#[test]
fn a_clean_bounded_run_exits_0_with_a_summary() {
    let output = daisyfuzz(&["run", "--seed", "3405", "--budget", "60"]);
    assert_eq!(output.status.code(), Some(0));
    let out = String::from_utf8_lossy(&output.stdout);
    assert!(out.contains("cases=60/60"));
    assert!(out.contains("failures=0"));
    assert!(out.contains("panics_contained=0"));
}

#[test]
fn an_injected_mismatch_is_caught_shrunk_and_reported() {
    let json_path =
        std::env::temp_dir().join(format!("daisyfuzz-cli-inject-{}.json", std::process::id()));
    let output = daisyfuzz(&[
        "run",
        "--seed",
        "3405",
        "--budget",
        "50",
        "--inject",
        "exec",
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert_eq!(
        output.status.code(),
        Some(1),
        "an injected fault must fail the run"
    );
    let out = String::from_utf8_lossy(&output.stdout);
    assert!(out.contains("MISMATCH"), "stdout: {out}");
    assert!(out.contains("injected fault"), "stdout: {out}");
    assert!(
        out.contains("replay with: daisyfuzz replay --seed"),
        "failures must carry a replayable seed, stdout: {out}"
    );
    assert!(
        out.contains("shrunk in"),
        "failures must be shrunk, stdout: {out}"
    );
    let json = std::fs::read_to_string(&json_path).expect("json report written");
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("\"oracle\": \"exec\""));
    assert!(json.contains("\"shrunk\":"));
    std::fs::remove_file(&json_path).ok();
}

#[test]
fn injected_panics_are_contained_and_the_run_still_finishes() {
    let output = daisyfuzz(&[
        "run", "--seed", "3405", "--budget", "80", "--inject", "panic",
    ]);
    assert_eq!(output.status.code(), Some(1));
    let out = String::from_utf8_lossy(&output.stdout);
    assert!(out.contains("PANIC"), "stdout: {out}");
    assert!(!out.contains("panics_contained=0"), "stdout: {out}");
}

#[test]
fn replay_accepts_a_seed_and_a_corpus_file() {
    let output = daisyfuzz(&["replay", "--seed", "3405"]);
    assert_eq!(output.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&output.stdout).contains("passed every oracle"));

    let corpus = fuzz::corpus::default_corpus_dir();
    let case = fuzz::corpus::load_corpus(&corpus)
        .expect("corpus loads")
        .into_iter()
        .next()
        .expect("corpus is non-empty");
    let output = daisyfuzz(&["replay", case.path.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(0));
}

#[test]
fn help_lists_every_command() {
    let output = daisyfuzz(&["--help"]);
    assert_eq!(output.status.code(), Some(0));
    let out = String::from_utf8_lossy(&output.stdout);
    for needle in [
        "run",
        "replay",
        "corpus",
        "store",
        "--inject",
        "exit status",
    ] {
        assert!(out.contains(needle), "help must mention {needle}");
    }
}

#[test]
fn a_clean_store_sweep_exits_0_and_writes_its_report() {
    let json_path =
        std::env::temp_dir().join(format!("daisyfuzz-cli-store-{}.json", std::process::id()));
    let output = daisyfuzz(&[
        "store",
        "--seed",
        "7",
        "--budget",
        "120",
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        stderr_line(&output)
    );
    let out = String::from_utf8_lossy(&output.stdout);
    assert!(out.contains("cases=120"), "stdout: {out}");
    assert!(out.contains("failures=0"), "stdout: {out}");
    let json = std::fs::read_to_string(&json_path).expect("json report written");
    assert!(json.contains("\"generated_by\": \"daisyfuzz store\""));
    assert!(json.contains("\"clean\": true"));
    std::fs::remove_file(&json_path).ok();
}

#[test]
fn a_weakened_store_fails_the_sweep() {
    let output = daisyfuzz(&[
        "store", "--seed", "7", "--budget", "120", "--inject", "no-fsync",
    ]);
    assert_eq!(
        output.status.code(),
        Some(1),
        "a store without data fsyncs must fail the sweep"
    );
    let out = String::from_utf8_lossy(&output.stdout);
    assert!(out.contains("inject=no-fsync"), "stdout: {out}");
    assert!(!out.contains("failures=0"), "stdout: {out}");
}
