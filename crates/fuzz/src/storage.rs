//! Storage fault sweep: the fuzz-farm face of the crash-safe tunestore.
//!
//! Two phases, both running entirely against the deterministic in-memory
//! [`FaultStorage`]:
//!
//! 1. **Matrix** — a fixed scripted workload is dry-run once to count its
//!    I/O operations, then re-run with a simulated power cut at every
//!    single operation index (with and without bit corruption of the torn
//!    tail), reopening after each cut.
//! 2. **Sweep** — `budget` randomized cases, each drawing a fresh workload
//!    (inserts, compactions, mid-script reopens) and one fault from the
//!    menu: a power cut at a random op, a clean injected failure of a
//!    random operation kind, or an `ENOSPC` disk budget.
//!
//! Every case checks the same recovery invariant as the tunestore crash
//! matrix: the reopened store must hold exactly the model state after `k`
//! completed steps, where `k` is the number of acknowledged steps or one
//! more (an in-flight insert whose record reached the disk whole); a
//! second reopen must be byte-stable and — under full durability — report
//! a clean [`StoreHealth`](tunestore::StoreHealth).
//!
//! [`StoreInject`] maps to deliberate [`Durability`] weakenings (skip the
//! data fsync, skip directory fsyncs, write snapshots in place), used to
//! test the farm itself: a weakened store MUST fail the sweep, proving the
//! harness can see real durability holes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use loop_ir::expr::Var;
use telemetry::json::json_string;
use transforms::{Recipe, Transform};
use tunestore::{
    is_power_cut, Durability, DurableStore, FaultPlan, FaultStorage, OpKind, Snapshot, SourceState,
    Storage, StoreError, StoredEntry,
};

/// Fingerprint all sweep stores carry.
const FP: &str = "daisyfuzz-store";

/// Deliberate durability weakening, for farm self-tests: each variant
/// removes one leg of the fsync/rename protocol, and the sweep is expected
/// to catch the resulting hole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreInject {
    /// Skip `fsync` of file data (acknowledge on buffered writes).
    NoSyncData,
    /// Skip `fsync` of parent directories (renames stay volatile).
    NoSyncDirs,
    /// Write snapshots in place instead of temp-file + atomic rename.
    NoAtomicRename,
}

impl StoreInject {
    /// Parses the CLI spelling (`no-fsync`, `no-dirsync`, `no-rename`).
    pub fn parse(text: &str) -> Option<StoreInject> {
        match text {
            "no-fsync" => Some(StoreInject::NoSyncData),
            "no-dirsync" => Some(StoreInject::NoSyncDirs),
            "no-rename" => Some(StoreInject::NoAtomicRename),
            _ => None,
        }
    }

    /// The CLI spelling of this injection.
    pub fn name(&self) -> &'static str {
        match self {
            StoreInject::NoSyncData => "no-fsync",
            StoreInject::NoSyncDirs => "no-dirsync",
            StoreInject::NoAtomicRename => "no-rename",
        }
    }

    /// The weakened durability setting this injection runs the store at.
    pub fn durability(&self) -> Durability {
        match self {
            StoreInject::NoSyncData => Durability {
                sync_data: false,
                ..Durability::FULL
            },
            StoreInject::NoSyncDirs => Durability {
                sync_dirs: false,
                ..Durability::FULL
            },
            StoreInject::NoAtomicRename => Durability {
                atomic_rename: false,
                ..Durability::FULL
            },
        }
    }
}

/// Configuration of one `daisyfuzz store` run.
#[derive(Debug, Clone)]
pub struct StoreSweepConfig {
    /// Campaign seed; per-case seeds derive from it.
    pub seed: u64,
    /// Number of randomized sweep cases (after the exhaustive matrix).
    pub budget: u64,
    /// Optional deliberate durability weakening (farm self-test).
    pub inject: Option<StoreInject>,
}

impl Default for StoreSweepConfig {
    fn default() -> Self {
        StoreSweepConfig {
            seed: 0xD15C,
            budget: 1000,
            inject: None,
        }
    }
}

/// One recovery-invariant violation (or contained panic), replayable from
/// its case seed.
#[derive(Debug, Clone)]
pub struct StoreFailure {
    /// `"matrix"` or `"sweep"`.
    pub phase: &'static str,
    /// The per-case seed (matrix phase: the crash op index).
    pub case_seed: u64,
    /// What went wrong.
    pub detail: String,
}

/// Result of a `daisyfuzz store` run.
#[derive(Debug, Clone)]
pub struct StoreReport {
    /// Campaign seed.
    pub seed: u64,
    /// Crash points enumerated by the matrix phase.
    pub matrix_points: u64,
    /// Randomized sweep cases run.
    pub cases: u64,
    /// The injection the run was performed under, if any.
    pub inject: Option<StoreInject>,
    /// Every recorded violation.
    pub failures: Vec<StoreFailure>,
    /// Wall-clock seconds.
    pub elapsed_secs: f64,
}

impl StoreReport {
    /// `true` when every crash point and every sweep case recovered.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report as JSON (hand-rolled; the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        json.push_str("  \"generated_by\": \"daisyfuzz store\",\n");
        json.push_str(&format!("  \"seed\": {},\n", self.seed));
        json.push_str(&format!("  \"matrix_points\": {},\n", self.matrix_points));
        json.push_str(&format!("  \"cases\": {},\n", self.cases));
        json.push_str(&format!(
            "  \"inject\": {},\n",
            match self.inject {
                Some(inject) => json_string(inject.name()),
                None => "null".to_string(),
            }
        ));
        json.push_str(&format!("  \"elapsed_secs\": {:.3},\n", self.elapsed_secs));
        json.push_str(&format!("  \"clean\": {},\n", self.clean()));
        json.push_str("  \"failures\": [\n");
        for (i, f) in self.failures.iter().enumerate() {
            json.push_str("    {\n");
            json.push_str(&format!("      \"phase\": {},\n", json_string(f.phase)));
            json.push_str(&format!("      \"case_seed\": {},\n", f.case_seed));
            json.push_str(&format!("      \"detail\": {}\n", json_string(&f.detail)));
            json.push_str(if i + 1 == self.failures.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        json.push_str("  ]\n}\n");
        json
    }
}

/// SplitMix64 step, for per-case value streams.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One step of a store workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Insert `key` at `cost_millis / 1000.0` seconds.
    Insert(u64, u64),
    /// Fold the journal into the snapshot.
    Compact,
    /// Drop the handle and recover mid-script.
    Reopen,
}

/// The fault a sweep case injects.
#[derive(Debug, Clone, Copy)]
enum Fault {
    /// Power cut at this op index, optionally flipping a bit in each torn
    /// region when the crash image is materialized.
    PowerCut { cut: u64, flip: bool },
    /// The Nth operation of this kind fails cleanly (not applied).
    CleanFail { kind: OpKind, nth: u64 },
    /// `ENOSPC` after this many payload bytes.
    DiskBudget { bytes: u64 },
}

fn store_path() -> PathBuf {
    PathBuf::from("dir/store.tunedb")
}

fn entry(key: u64, cost_millis: u64) -> StoredEntry {
    let cost = cost_millis as f64 / 1000.0;
    StoredEntry {
        key,
        cost,
        embedding: vec![cost, 2.0 * cost],
        recipe: Recipe::new(vec![Transform::Vectorize {
            iter: Var::new("j"),
        }]),
        chain: vec![Var::new("i"), Var::new("j")],
        source: format!("fuzz-{key}"),
    }
}

/// The fixed workload the exhaustive matrix phase enumerates: inserts
/// (with a best-cost improvement and a rejected duplicate), compactions
/// and a mid-script recovery.
fn matrix_script() -> Vec<Step> {
    use Step::*;
    vec![
        Insert(1, 900),
        Insert(2, 800),
        Insert(1, 500),
        Compact,
        Insert(3, 700),
        Insert(2, 950), // rejected: worse cost, no I/O
        Reopen,
        Insert(4, 600),
        Compact,
        Insert(5, 450),
    ]
}

/// A randomized workload of 4..=12 steps.
fn random_script(state: &mut u64) -> Vec<Step> {
    let len = 4 + splitmix(state) % 9;
    (0..len)
        .map(|_| match splitmix(state) % 10 {
            0..=6 => Step::Insert(splitmix(state) % 6, 50 + splitmix(state) % 1000),
            7 | 8 => Step::Compact,
            _ => Step::Reopen,
        })
        .collect()
}

/// A random fault from the menu, biased toward power cuts (the richest
/// failure mode). `total_ops` bounds the power-cut index.
fn random_fault(state: &mut u64, total_ops: u64) -> Fault {
    const KINDS: [OpKind; 8] = [
        OpKind::Read,
        OpKind::Write,
        OpKind::Append,
        OpKind::Truncate,
        OpKind::SyncFile,
        OpKind::SyncDir,
        OpKind::Rename,
        OpKind::RemoveFile,
    ];
    match splitmix(state) % 4 {
        0 | 1 => Fault::PowerCut {
            cut: splitmix(state) % total_ops.max(1),
            flip: splitmix(state) % 2 == 1,
        },
        2 => Fault::CleanFail {
            kind: KINDS[(splitmix(state) % KINDS.len() as u64) as usize],
            nth: splitmix(state) % 6,
        },
        _ => Fault::DiskBudget {
            bytes: 64 + splitmix(state) % 4096,
        },
    }
}

/// Canonical, order-insensitive form of a set of entries.
fn canon(entries: &[StoredEntry]) -> Vec<(u64, u64, String)> {
    let mut out: Vec<(u64, u64, String)> = entries
        .iter()
        .map(|e| (e.key, e.cost.to_bits(), e.source.clone()))
        .collect();
    out.sort();
    out
}

/// `models(steps)[k]` is the expected content after `k` completed steps.
fn models(steps: &[Step]) -> Vec<Vec<(u64, u64, String)>> {
    let mut view = Snapshot {
        fingerprint: FP.to_string(),
        entries: Vec::new(),
    };
    let mut out = vec![canon(&view.entries)];
    for step in steps {
        if let Step::Insert(key, cost) = step {
            view.insert(entry(*key, *cost));
        }
        out.push(canon(&view.entries));
    }
    out
}

/// Runs a workload, returning completed steps and the stopping error.
fn drive(
    storage: &Arc<FaultStorage>,
    durability: Durability,
    steps: &[Step],
) -> (usize, Option<StoreError>) {
    let open = || {
        DurableStore::open_with(
            Arc::clone(storage) as Arc<dyn Storage>,
            store_path(),
            FP,
            durability,
        )
    };
    let mut store = match open() {
        Ok(store) => store,
        Err(error) => return (0, Some(error)),
    };
    let mut completed = 0;
    for step in steps {
        let result = match step {
            Step::Insert(key, cost) => store.insert(entry(*key, *cost)).map(|_| ()),
            Step::Compact => store.compact(),
            Step::Reopen => match open() {
                Ok(reopened) => {
                    store = reopened;
                    Ok(())
                }
                Err(error) => Err(error),
            },
        };
        match result {
            Ok(()) => completed += 1,
            Err(error) => return (completed, Some(error)),
        }
    }
    (completed, None)
}

/// Runs one faulted case and checks the recovery invariant, returning the
/// violation description if any.
fn check_case(durability: Durability, steps: &[Step], fault: Fault) -> Result<(), String> {
    let models = models(steps);
    let plan = match fault {
        Fault::PowerCut { cut, flip } => FaultPlan {
            seed: cut.wrapping_mul(0x2545_F491_4F6C_DD1D),
            crash_at_op: Some(cut),
            flip_bit_on_crash: flip,
            ..FaultPlan::default()
        },
        Fault::CleanFail { kind, nth } => FaultPlan {
            fail_op: Some((kind, nth)),
            ..FaultPlan::default()
        },
        Fault::DiskBudget { bytes } => FaultPlan {
            disk_budget: Some(bytes),
            ..FaultPlan::default()
        },
    };
    let storage = Arc::new(FaultStorage::new(plan));
    let (acked, error) = drive(&storage, durability, steps);
    if let (Fault::PowerCut { cut, .. }, Some(StoreError::Io(io))) = (fault, &error) {
        if !is_power_cut(io) {
            return Err(format!("cut {cut}: expected the power cut, got: {io}"));
        }
    }
    if matches!(fault, Fault::PowerCut { .. }) {
        storage.crash();
    }
    storage.set_plan(FaultPlan::default());

    let reopen = || {
        DurableStore::open(Arc::clone(&storage) as Arc<dyn Storage>, store_path(), FP)
            .map_err(|e| format!("recovery open failed: {e}"))
    };
    let store = reopen()?;
    let got = canon(store.entries());
    let in_flight = (acked + 1).min(models.len() - 1);
    if got != models[acked] && got != models[in_flight] {
        return Err(format!(
            "recovered {got:?} is neither the state after {acked} acked steps \
             ({:?}) nor with the in-flight step ({:?})",
            models[acked], models[in_flight]
        ));
    }
    if durability == Durability::FULL && matches!(fault, Fault::PowerCut { .. }) {
        for source in [&store.health().snapshot, &store.health().journal] {
            if matches!(
                source,
                SourceState::Quarantined { .. } | SourceState::Foreign { .. }
            ) {
                return Err(format!("a pure power cut must never quarantine: {source}"));
            }
        }
    }
    drop(store);
    let again = reopen()?;
    if canon(again.entries()) != got {
        return Err("second reopen changed the recovered state".to_string());
    }
    if durability == Durability::FULL && !again.health().is_clean() {
        return Err(format!(
            "second open must be fully clean, got: {}",
            again.health()
        ));
    }
    Ok(())
}

/// `check_case` with panic containment: a panicking store is a failure
/// finding, not a sweep abort.
fn contained_check(durability: Durability, steps: &[Step], fault: Fault) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| check_case(durability, steps, fault))) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("PANIC: {message}"))
        }
    }
}

/// Runs the full store sweep: the exhaustive crash matrix on the fixed
/// workload, then `budget` randomized fault cases.
pub fn run_store_sweep(config: &StoreSweepConfig) -> StoreReport {
    let start = Instant::now();
    let durability = config
        .inject
        .map(|inject| inject.durability())
        .unwrap_or(Durability::FULL);
    let mut failures = Vec::new();

    // Phase 1: exhaustive matrix over the fixed script.
    let script = matrix_script();
    let dry = Arc::new(FaultStorage::default());
    let (completed, error) = drive(&dry, durability, &script);
    let total = dry.ops();
    if let Some(error) = error {
        failures.push(StoreFailure {
            phase: "matrix",
            case_seed: 0,
            detail: format!("dry run failed after {completed} steps: {error}"),
        });
    }
    let mut matrix_points = 0u64;
    for cut in 0..total {
        for flip in [false, true] {
            matrix_points += 1;
            let fault = Fault::PowerCut { cut, flip };
            if let Err(detail) = contained_check(durability, &script, fault) {
                failures.push(StoreFailure {
                    phase: "matrix",
                    case_seed: cut,
                    detail: format!("crash at op {cut} (flip={flip}): {detail}"),
                });
            }
        }
    }

    // Phase 2: randomized sweep.
    let mut cases = 0u64;
    for index in 0..config.budget {
        cases += 1;
        let case_seed = crate::campaign::case_seed(config.seed, index);
        let mut state = case_seed;
        let steps = random_script(&mut state);
        let dry = Arc::new(FaultStorage::default());
        let (completed, error) = drive(&dry, durability, &steps);
        if let Some(error) = error {
            failures.push(StoreFailure {
                phase: "sweep",
                case_seed,
                detail: format!("fault-free run failed after {completed} steps: {error}"),
            });
            continue;
        }
        let fault = random_fault(&mut state, dry.ops());
        if let Err(detail) = contained_check(durability, &steps, fault) {
            failures.push(StoreFailure {
                phase: "sweep",
                case_seed,
                detail: format!("{fault:?}: {detail}"),
            });
        }
    }

    StoreReport {
        seed: config.seed,
        matrix_points,
        cases,
        inject: config.inject,
        failures,
        elapsed_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_full_durability_sweep_is_clean() {
        let report = run_store_sweep(&StoreSweepConfig {
            seed: 7,
            budget: 200,
            inject: None,
        });
        assert!(report.matrix_points > 40, "matrix must enumerate every op");
        assert_eq!(report.cases, 200);
        assert!(
            report.clean(),
            "full durability must survive every fault: {:#?}",
            report.failures
        );
    }

    #[test]
    fn every_injection_is_caught_by_the_sweep() {
        for inject in [
            StoreInject::NoSyncData,
            StoreInject::NoSyncDirs,
            StoreInject::NoAtomicRename,
        ] {
            let report = run_store_sweep(&StoreSweepConfig {
                seed: 7,
                budget: 200,
                inject: Some(inject),
            });
            assert!(
                !report.clean(),
                "{}: a weakened store must fail the sweep",
                inject.name()
            );
        }
    }

    #[test]
    fn reports_are_deterministic_and_render_json() {
        let config = StoreSweepConfig {
            seed: 11,
            budget: 50,
            inject: None,
        };
        let a = run_store_sweep(&config);
        let b = run_store_sweep(&config);
        assert_eq!(a.failures.len(), b.failures.len());
        assert_eq!(a.matrix_points, b.matrix_points);
        let json = a.to_json();
        assert!(json.contains("\"generated_by\": \"daisyfuzz store\""));
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"inject\": null"));
        let json = run_store_sweep(&StoreSweepConfig {
            seed: 11,
            budget: 10,
            inject: Some(StoreInject::NoSyncData),
        })
        .to_json();
        assert!(json.contains("\"inject\": \"no-fsync\""));
        assert!(json.contains("\"clean\": false"));
    }

    #[test]
    fn the_inject_menu_round_trips() {
        for name in ["no-fsync", "no-dirsync", "no-rename"] {
            let inject = StoreInject::parse(name).unwrap();
            assert_eq!(inject.name(), name);
            assert_ne!(inject.durability(), Durability::FULL);
        }
        assert!(StoreInject::parse("no-such").is_none());
    }
}
