//! Seeded, deterministic generator of arbitrary legal affine programs.
//!
//! Every program this module emits is valid by construction — it passes
//! [`Program::validate`], round-trips through the textual frontend
//! ([`loop_ir::source::to_source`]), and executes without out-of-bounds
//! accesses, because subscripts are drawn from a menu whose numeric range
//! is known at generation time and array extents are sized to cover it.
//! Within that envelope the generator deliberately covers the shapes the
//! run-compression and lowering fast paths must not get wrong: imperfect
//! nests (statements between loop levels), parametric and triangular
//! bounds, zero-trip domains, strided domains, negative strides (reversal
//! subscripts), super-line strides (scaled subscripts), stencil-staggered
//! accesses (`A[i + k]` families sharing one array), scalar reductions onto
//! rank-1 accumulators, loop-invariant accesses and multi-statement bodies
//! chained through earlier statements' outputs.

use std::collections::BTreeMap;

use loop_ir::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size and shape envelope of generated programs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of top-level loop nests (at least 1).
    pub max_nests: usize,
    /// Maximum loop depth per nest (at least 1).
    pub max_depth: usize,
    /// Maximum statements directly inside one loop body.
    pub max_stmts: usize,
    /// Inclusive upper bound for the size parameter `N` (at least 4).
    pub max_extent: i64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_nests: 3,
            max_depth: 3,
            max_stmts: 3,
            max_extent: 10,
        }
    }
}

/// One iterator in scope during generation, with the largest value it can
/// attain (bounds are numeric under the program's parameter bindings, so
/// this is exact; zero-trip loops conservatively report `lower`).
#[derive(Debug, Clone)]
struct ScopeIter {
    name: String,
    max_value: i64,
}

/// The menu entry chosen for one subscript dimension: the expression plus
/// the exclusive extent it needs the array dimension to have.
struct Subscript {
    expr: Expr,
    extent: i64,
}

struct Gen {
    rng: StdRng,
    n: i64,
    arrays: BTreeMap<String, Vec<i64>>,
    /// Arrays already written by an earlier statement — candidates for
    /// chained reads (the dependences normalization must respect).
    written: Vec<String>,
    next_array: usize,
    next_stmt: usize,
    next_iter: usize,
    has_scalar_param: bool,
}

/// Generates the deterministic program for `seed` within `config`'s
/// envelope. Equal seeds and configs yield identical programs.
pub fn generate(seed: u64, config: &GenConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..config.max_extent.max(4) + 1);
    let mut g = Gen {
        rng,
        n,
        arrays: BTreeMap::new(),
        written: Vec::new(),
        next_array: 0,
        next_stmt: 0,
        next_iter: 0,
        has_scalar_param: false,
    };

    let nests = g.rng.gen_range(1..config.max_nests.max(1) + 1);
    let mut body = Vec::new();
    for _ in 0..nests {
        let depth = g.rng.gen_range(1..config.max_depth.max(1) + 1);
        let node = g.gen_nest(depth, config, &mut Vec::new());
        body.push(node);
    }
    // A program whose every loop is zero-trip is legal but dull; ensure at
    // least one statement executes by appending a scalar-only statement at
    // top level some of the time, and always when nothing else could run.
    if body.iter().all(|n| !matches!(n, Node::Computation(_))) && g.rng.gen_bool(0.3) {
        let stmt = g.gen_statement(&[]);
        body.push(stmt);
    }

    let mut builder = Program::builder(format!("fuzz_{seed:016x}")).param("N", g.n);
    if g.has_scalar_param {
        builder = builder.scalar("alpha", 1.5);
    }
    let arrays: Vec<(String, Vec<i64>)> = g
        .arrays
        .iter()
        .map(|(n, e)| (n.clone(), e.clone()))
        .collect();
    for (name, extents) in arrays {
        let dims = extents.iter().map(|&e| g.extent_expr(e)).collect();
        builder = builder.array_with_dims(name.as_str(), dims);
    }
    for node in body {
        builder = builder.node(node);
    }
    builder
        .build()
        .expect("generated programs are valid by construction")
}

impl Gen {
    /// Generates one loop nest of at most `depth` levels. `scope` carries
    /// the enclosing iterators; statements may appear before and after the
    /// inner loop (imperfect nests).
    fn gen_nest(&mut self, depth: usize, config: &GenConfig, scope: &mut Vec<ScopeIter>) -> Node {
        if depth == 0 {
            return self.gen_statement(scope);
        }
        let iter = format!("i{}", self.next_iter);
        self.next_iter += 1;
        let (lower, upper, step, max_value) = self.gen_bounds(scope);

        scope.push(ScopeIter {
            name: iter.clone(),
            max_value,
        });
        let mut body = Vec::new();
        let stmts = self.rng.gen_range(1..config.max_stmts.max(1) + 1);
        let inner_at = if depth > 1 {
            Some(self.rng.gen_range(0..stmts + 1))
        } else {
            None
        };
        for s in 0..=stmts {
            if Some(s) == inner_at {
                let inner = self.gen_nest(depth - 1, config, scope);
                body.push(inner);
            }
            if s < stmts {
                let stmt = self.gen_statement(scope);
                body.push(stmt);
            }
        }
        scope.pop();

        let mut l = match for_loop(iter.as_str(), lower, upper, body) {
            Node::Loop(l) => l,
            _ => unreachable!("for_loop builds a loop node"),
        };
        l.step = step;
        Node::Loop(l)
    }

    /// Draws loop bounds from the menu: parametric `0..N`, constant,
    /// possibly zero-trip constant-to-parametric, and triangular bounds in
    /// either direction off an enclosing iterator. Returns the bounds, the
    /// step and the largest value the iterator can attain.
    fn gen_bounds(&mut self, scope: &[ScopeIter]) -> (Expr, Expr, i64, i64) {
        let step = *[1, 1, 1, 2, 3].choose(&mut self.rng);
        let n = self.n;
        // Largest attained value for a *fixed* lower bound: the last
        // in-domain multiple of `step`; an empty domain conservatively
        // reports `lo` so subscript extents stay safe.
        let last = |lo: i64, hi: i64| {
            if hi > lo {
                lo + (hi - 1 - lo) / step * step
            } else {
                lo
            }
        };
        let outer = scope.choose_cloned(&mut self.rng);
        let (lower, upper, max_value) = match (self.rng.gen_range(0..6u32), outer) {
            // Triangular: outer..N (lower triangle). The lower bound varies
            // per outer iteration, so any value up to N - 1 is attainable
            // regardless of the step.
            (0, Some(o)) => (var(o.name.as_str()), var("N"), n - 1),
            // Triangular: 0..outer + 1 (upper bound tracks the outer iterator).
            (1, Some(o)) => (
                cst(0),
                var(o.name.as_str()) + cst(1),
                last(0, o.max_value + 1),
            ),
            // Constant domain, possibly empty.
            (2, _) => {
                let lo = self.rng.gen_range(0..n);
                let hi = self.rng.gen_range(0..n + 1);
                (cst(lo), cst(hi), last(lo, hi))
            }
            // Constant lower edge into the parametric extent.
            (3, _) => {
                let lo = self.rng.gen_range(1..n);
                (cst(lo), var("N"), last(lo, n))
            }
            // The plain parametric domain, weighted heaviest.
            _ => (cst(0), var("N"), last(0, n)),
        };
        (lower, upper, step, max_value)
    }

    /// Generates one computation statement whose accesses are in bounds by
    /// construction for the iterators in `scope`.
    fn gen_statement(&mut self, scope: &[ScopeIter]) -> Node {
        let name = format!("S{}", self.next_stmt);
        self.next_stmt += 1;

        // Scalar reduction onto a rank-1 accumulator, plain reduction onto
        // an indexed target, or a plain assignment.
        let kind = self.rng.gen_range(0..10u32);
        let reduction = match kind {
            0..=2 if !scope.is_empty() => {
                Some(*[BinOp::Add, BinOp::Add, BinOp::Mul].choose(&mut self.rng))
            }
            _ => None,
        };
        let scalar_target = reduction.is_some() && self.rng.gen_bool(0.4);

        let target = if scalar_target {
            // A scalar reduction: every iteration accumulates into one cell.
            let array = self.fresh_array(vec![1]);
            ArrayRef::new(array, vec![cst(0)])
        } else {
            let rank = if scope.is_empty() {
                1
            } else {
                self.rng.gen_range(1..scope.len().min(2) + 1)
            };
            let subs = self.gen_subscripts(rank, scope, false);
            let extents = subs.iter().map(|s| s.extent).collect();
            let array = self.fresh_array(extents);
            ArrayRef::new(array, subs.into_iter().map(|s| s.expr).collect())
        };

        let value = self.gen_value(scope);
        let comp = match reduction {
            Some(op) => Computation::reduction(name, target.clone(), op, value),
            None => Computation::assign(name, target.clone(), value),
        };
        self.written.push(target.array.to_string());
        Node::Computation(comp)
    }

    /// Generates the right-hand side: one to three loads (possibly chained
    /// through earlier outputs, possibly stencil-staggered off one array)
    /// combined with `+ - * min`, an optional scalar parameter factor and a
    /// constant term. A quarter of bodies with an iterator in scope instead
    /// start from a multi-tap stencil family — 2-5 reads of *one* shared
    /// array at mixed-sign constant offsets, the shape the stagger-merged
    /// cache fast path and the analytic tier both special-case.
    fn gen_value(&mut self, scope: &[ScopeIter]) -> ScalarExpr {
        let mut value = match self.gen_stencil(scope) {
            Some(stencil) => stencil,
            None => self.gen_load(scope),
        };
        if self.rng.gen_bool(0.35) {
            // Stencil stagger: a second load of the *same* shape family.
            let second = self.gen_load(scope);
            value = match self.rng.gen_range(0..3u32) {
                0 => value + second,
                1 => value * second,
                _ => ScalarExpr::Binary(BinOp::Min, Box::new(value), Box::new(second)),
            };
        }
        if self.rng.gen_bool(0.25) {
            self.has_scalar_param = true;
            value = value * param("alpha");
        }
        match self.rng.gen_range(0..4u32) {
            0 => value + fconst(1.0),
            1 => value * fconst(0.5),
            2 => value - fconst(0.25),
            _ => value,
        }
    }

    /// With probability 1/4 (and an iterator in scope), generates a
    /// stencil-heavy load family: 2-5 taps `A[i + pad + k]` off one fresh
    /// shared array, with tap offsets `k` drawn from `[-4, 4]` so spreads
    /// mix signs, straddle 64-byte line boundaries and include duplicate
    /// taps. The pad keeps every tap in bounds.
    fn gen_stencil(&mut self, scope: &[ScopeIter]) -> Option<ScalarExpr> {
        if scope.is_empty() || !self.rng.gen_bool(0.25) {
            return None;
        }
        let it = scope.choose(&mut self.rng).clone();
        let taps = self.rng.gen_range(2..6usize);
        const PAD: i64 = 4;
        let array = self.fresh_array(vec![it.max_value + 1 + 2 * PAD]);
        let mut value: Option<ScalarExpr> = None;
        for _ in 0..taps {
            let k = self.rng.gen_range(-PAD..PAD + 1);
            let tap = load(array.clone(), vec![var(it.name.as_str()) + cst(PAD + k)]);
            value = Some(match value {
                Some(v) => v + tap,
                None => tap,
            });
        }
        value
    }

    /// Generates one load. Prefers re-reading an array an earlier statement
    /// wrote (a real dependence) when one fits the scope; otherwise loads a
    /// fresh input array shaped for a newly drawn subscript tuple.
    fn gen_load(&mut self, scope: &[ScopeIter]) -> ScalarExpr {
        if !self.written.is_empty() && self.rng.gen_bool(0.45) {
            let candidate = self
                .written
                .choose_cloned(&mut self.rng)
                .expect("written is non-empty");
            let extents = self.arrays[&candidate].clone();
            if let Some(indices) = self.subscripts_within(&extents, scope) {
                return load(candidate, indices);
            }
        }
        let rank = if scope.is_empty() {
            1
        } else {
            self.rng.gen_range(1..scope.len().min(2) + 1)
        };
        let subs = self.gen_subscripts(rank, scope, true);
        let extents: Vec<i64> = subs.iter().map(|s| s.extent).collect();
        let array = self.fresh_array(extents);
        load(array, subs.into_iter().map(|s| s.expr).collect())
    }

    /// Draws `rank` subscripts from the menu. `allow_stagger` additionally
    /// permits constant-offset (stencil) forms.
    fn gen_subscripts(
        &mut self,
        rank: usize,
        scope: &[ScopeIter],
        allow_stagger: bool,
    ) -> Vec<Subscript> {
        // Distinct iterators per dimension where possible, so rank-2
        // accesses get genuine 2-D footprints (and transposes on reuse).
        let mut picks: Vec<ScopeIter> = scope.to_vec();
        picks.shuffle(&mut self.rng);
        (0..rank)
            .map(|d| {
                let it = picks.get(d % picks.len().max(1)).cloned();
                self.gen_subscript(it, allow_stagger)
            })
            .collect()
    }

    fn gen_subscript(&mut self, it: Option<ScopeIter>, allow_stagger: bool) -> Subscript {
        let Some(it) = it else {
            let c = self.rng.gen_range(0..2);
            return Subscript {
                expr: cst(c),
                extent: c + 1,
            };
        };
        match self.rng.gen_range(0..8u32) {
            // Reversal: `max - i`, a negative access stride.
            0 => Subscript {
                expr: cst(it.max_value) - var(it.name.as_str()),
                extent: it.max_value + 1,
            },
            // Stencil stagger: `i + k`.
            1 | 2 if allow_stagger => {
                let k = self.rng.gen_range(1..3);
                Subscript {
                    expr: var(it.name.as_str()) + cst(k),
                    extent: it.max_value + 1 + k,
                }
            }
            // Scaled: `2 * i`, a super-line stride on rank-1 arrays.
            3 => Subscript {
                expr: cst(2) * var(it.name.as_str()),
                extent: 2 * it.max_value + 1,
            },
            // Loop-invariant constant.
            4 => {
                let c = self.rng.gen_range(0..2);
                Subscript {
                    expr: cst(c),
                    extent: c + 1,
                }
            }
            // The plain iterator, weighted heaviest.
            _ => Subscript {
                expr: var(it.name.as_str()),
                extent: it.max_value + 1,
            },
        }
    }

    /// Tries to build an in-bounds subscript tuple for an *existing* array
    /// with the given per-dimension extents; `None` when some dimension
    /// cannot be covered from the current scope.
    fn subscripts_within(&mut self, extents: &[i64], scope: &[ScopeIter]) -> Option<Vec<Expr>> {
        let mut picks: Vec<ScopeIter> = scope.to_vec();
        picks.shuffle(&mut self.rng);
        extents
            .iter()
            .enumerate()
            .map(|(d, &extent)| {
                // Prefer an iterator that fits the dimension; fall back to
                // a constant, which always fits (extents are >= 1).
                let fitting = picks
                    .iter()
                    .cycle()
                    .skip(d)
                    .take(picks.len())
                    .find(|it| it.max_value < extent);
                match fitting {
                    Some(it) if self.rng.gen_bool(0.8) => {
                        if it.max_value < extent && self.rng.gen_bool(0.2) {
                            // Reversed re-read of the fitting range.
                            Some(cst(it.max_value) - var(it.name.as_str()))
                        } else {
                            Some(var(it.name.as_str()))
                        }
                    }
                    _ => Some(cst(self.rng.gen_range(0..extent))),
                }
            })
            .collect()
    }

    /// Declares a fresh array sized exactly for `extents`.
    fn fresh_array(&mut self, extents: Vec<i64>) -> String {
        let name = format!("A{}", self.next_array);
        self.next_array += 1;
        self.arrays.insert(name.clone(), extents);
        name
    }

    /// Renders a numeric extent as a declaration expression, preferring the
    /// parametric form when the extent is tied to `N` so declarations stay
    /// symbolic like hand-written benchmarks.
    fn extent_expr(&mut self, extent: i64) -> Expr {
        if extent == self.n {
            var("N")
        } else if extent > self.n && extent <= self.n + 3 {
            var("N") + cst(extent - self.n)
        } else {
            cst(extent)
        }
    }
}

/// Deterministic choice helpers over the shim RNG.
trait ChooseExt<T> {
    fn choose(&self, rng: &mut StdRng) -> &T;
}

impl<T> ChooseExt<T> for [T] {
    fn choose(&self, rng: &mut StdRng) -> &T {
        &self[rng.gen_range(0..self.len())]
    }
}

trait ChooseCloned<T: Clone> {
    fn choose_cloned(&self, rng: &mut StdRng) -> Option<T>;
}

impl<T: Clone> ChooseCloned<T> for [T] {
    fn choose_cloned(&self, rng: &mut StdRng) -> Option<T> {
        if self.is_empty() {
            None
        } else {
            Some(self[rng.gen_range(0..self.len())].clone())
        }
    }
}

trait ShuffleExt {
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> ShuffleExt for Vec<T> {
    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = GenConfig::default();
        for seed in 0..50 {
            assert_eq!(generate(seed, &config), generate(seed, &config));
        }
    }

    #[test]
    fn generated_programs_validate() {
        let config = GenConfig::default();
        for seed in 0..500 {
            let p = generate(seed, &config);
            p.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: invalid program: {e}"));
        }
    }

    #[test]
    fn the_shape_menu_is_actually_reached() {
        // Across a modest seed range the generator must produce each of the
        // shapes the fast paths special-case.
        let config = GenConfig::default();
        let mut reversal = false;
        let mut strided = false;
        let mut scalar_red = false;
        let mut multi_nest = false;
        for seed in 0..300 {
            let p = generate(seed, &config);
            let text = loop_ir::printer::print_program(&p);
            reversal |= text.contains("- i");
            strided |= text.contains("+= 2") || text.contains("+= 3");
            scalar_red |= p
                .computations()
                .iter()
                .any(|c| c.reduction.is_some() && c.target.indices == vec![cst(0)]);
            multi_nest |= p.loop_nests().len() > 1;
        }
        assert!(reversal, "no reversal subscript in 300 seeds");
        assert!(strided, "no strided loop in 300 seeds");
        assert!(scalar_red, "no scalar reduction in 300 seeds");
        assert!(multi_nest, "no multi-nest program in 300 seeds");
    }

    #[test]
    fn stencil_families_are_generated_with_three_plus_taps() {
        // The stagger-merged cache path only engages at >= 3 same-array
        // taps within one line span, so the generator must reach wide tap
        // families, not just pairs.
        let config = GenConfig::default();
        let mut widest = 0usize;
        for seed in 0..300 {
            let p = generate(seed, &config);
            for comp in p.computations() {
                let mut per_array: BTreeMap<String, usize> = BTreeMap::new();
                for r in comp.value.loads() {
                    *per_array.entry(r.array.to_string()).or_default() += 1;
                }
                widest = widest.max(per_array.values().copied().max().unwrap_or(0));
            }
        }
        assert!(
            widest >= 3,
            "no 3+-tap same-array stencil family in 300 seeds (widest {widest})"
        );
    }
}
