//! Delta-debugging shrinker: greedily minimizes a failing program while
//! preserving the failure.
//!
//! Starting from a program on which some oracle failed, the shrinker
//! repeatedly proposes structural reductions — drop a top-level nest, drop
//! a statement, splice a loop's body into its parent (substituting the
//! iterator by the loop's lower bound), shrink the size parameter, shrink
//! constant bounds, simplify statement right-hand sides — and keeps the
//! first candidate that (a) still validates and (b) still fails the *same
//! oracle in the same way* ([`Verdict::failure_key`]). The scan restarts
//! after every accepted reduction and stops at a fixpoint or after
//! `max_steps` accepted reductions, so shrinking always terminates.

use loop_ir::prelude::*;

use crate::oracle::Verdict;

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized program (the original when nothing could be removed).
    pub program: Program,
    /// Number of accepted reductions.
    pub steps: usize,
}

/// Size metric the shrinker drives down: nodes plus total constant mass,
/// so bound reductions count as progress too.
fn size_of(program: &Program) -> u64 {
    let mut nodes = 0u64;
    fn walk(n: &Node, nodes: &mut u64) {
        *nodes += 1;
        if let Node::Loop(l) = n {
            for c in &l.body {
                walk(c, nodes);
            }
        }
    }
    for n in &program.body {
        walk(n, &mut nodes);
    }
    let param_mass: i64 = program.params.values().sum();
    nodes * 100 + program.arrays.len() as u64 * 10 + param_mass.max(0) as u64
}

/// Greedily shrinks `program`, keeping candidates for which `still_fails`
/// holds (the caller typically re-runs the failing oracle and compares
/// [`Verdict::failure_key`]). Deterministic; at most `max_steps` accepted
/// reductions.
pub fn shrink(
    program: &Program,
    still_fails: impl Fn(&Program) -> bool,
    max_steps: usize,
) -> Shrunk {
    let mut current = program.clone();
    let mut steps = 0;
    'outer: while steps < max_steps {
        let current_size = size_of(&current);
        for candidate in candidates(&current) {
            if candidate.validate().is_err() {
                continue;
            }
            if size_of(&candidate) >= current_size {
                continue;
            }
            if still_fails(&candidate) {
                current = candidate;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    Shrunk {
        program: current,
        steps,
    }
}

/// Convenience predicate: the candidate fails with the same
/// [`Verdict::failure_key`] as `original_failure` under `oracle_fn`.
pub fn same_failure(
    original_failure: &Verdict,
    oracle_fn: impl Fn(&Program) -> Verdict,
) -> impl Fn(&Program) -> bool {
    let key = original_failure.failure_key();
    move |candidate| oracle_fn(candidate).failure_key() == key
}

/// All single-step reductions of `program`, cheapest-structural first.
fn candidates(program: &Program) -> Vec<Program> {
    let mut out = Vec::new();

    // 1. Drop one top-level node (keep at least one).
    if program.body.len() > 1 {
        for i in 0..program.body.len() {
            let mut p = program.clone();
            p.body.remove(i);
            out.push(cleanup(p));
        }
    }

    // 2. Drop one statement or inner loop anywhere in the tree.
    for path in node_paths(program) {
        if let Some(p) = drop_at(program, &path) {
            out.push(cleanup(p));
        }
    }

    // 3. Splice a loop: replace it with its body, substituting the
    // iterator by the loop's lower bound.
    for path in node_paths(program) {
        if let Some(p) = splice_at(program, &path) {
            out.push(cleanup(p));
        }
    }

    // 4. Shrink the size parameter(s) toward the minimum viable extent.
    for (name, value) in &program.params {
        for smaller in [value / 2, value - 1] {
            if smaller >= 1 && smaller < *value {
                let mut p = program.clone();
                p.params.insert(name.clone(), smaller);
                out.push(p);
            }
        }
    }

    // 5. Shrink constant loop bounds.
    for path in node_paths(program) {
        out.extend(shrink_bounds_at(program, &path));
    }

    // 6. Simplify statement right-hand sides: first load only, or a plain
    // constant; drop reductions.
    for path in node_paths(program) {
        out.extend(simplify_stmt_at(program, &path));
    }

    out
}

/// Paths (child-index chains from the program body) to every node.
fn node_paths(program: &Program) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    fn walk(nodes: &[Node], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        for (i, n) in nodes.iter().enumerate() {
            prefix.push(i);
            out.push(prefix.clone());
            if let Node::Loop(l) = n {
                walk(&l.body, prefix, out);
            }
            prefix.pop();
        }
    }
    walk(&program.body, &mut Vec::new(), &mut out);
    out
}

fn with_node_list<R>(
    program: &mut Program,
    path: &[usize],
    f: impl FnOnce(&mut Vec<Node>, usize) -> R,
) -> Option<R> {
    let (&last, parents) = path.split_last()?;
    let mut nodes: &mut Vec<Node> = &mut program.body;
    for &i in parents {
        match nodes.get_mut(i)? {
            Node::Loop(l) => nodes = &mut l.body,
            _ => return None,
        }
    }
    if last >= nodes.len() {
        return None;
    }
    Some(f(nodes, last))
}

/// Removes the node at `path` (refusing to empty a loop body or the
/// program).
fn drop_at(program: &Program, path: &[usize]) -> Option<Program> {
    let mut p = program.clone();
    with_node_list(&mut p, path, |nodes, i| {
        if nodes.len() <= 1 {
            return false;
        }
        nodes.remove(i);
        true
    })
    .filter(|ok| *ok)
    .map(|_| p)
}

/// Replaces the loop at `path` with its body, substituting the iterator by
/// the loop's lower bound everywhere below.
fn splice_at(program: &Program, path: &[usize]) -> Option<Program> {
    let mut p = program.clone();
    let spliced = with_node_list(&mut p, path, |nodes, i| {
        let Node::Loop(l) = &nodes[i] else {
            return false;
        };
        let iter = l.iter.clone();
        let lower = l.lower.clone();
        let replacement: Vec<Node> = l
            .body
            .iter()
            .map(|n| substitute_node(n, &iter, &lower))
            .collect();
        nodes.splice(i..i + 1, replacement);
        true
    })?;
    if !spliced {
        return None;
    }
    p.renumber_computations();
    Some(p)
}

fn substitute_node(node: &Node, var: &Var, value: &Expr) -> Node {
    match node {
        Node::Computation(c) => {
            let mut c = c.clone();
            c.target = c.target.substitute(var, value);
            c.value = c.value.substitute_index(var, value);
            Node::Computation(c)
        }
        Node::Loop(l) => {
            let mut l = l.clone();
            l.lower = l.lower.substitute(var, value).simplify();
            l.upper = l.upper.substitute(var, value).simplify();
            l.body = l
                .body
                .iter()
                .map(|n| substitute_node(n, var, value))
                .collect();
            Node::Loop(l)
        }
        Node::Call(c) => Node::Call(c.clone()),
    }
}

/// Candidate programs with one constant bound of the loop at `path`
/// shrunk.
fn shrink_bounds_at(program: &Program, path: &[usize]) -> Vec<Program> {
    let mut out = Vec::new();
    for (lower_side, delta_half) in [(false, true), (false, false), (true, false)] {
        let mut p = program.clone();
        let changed = with_node_list(&mut p, path, |nodes, i| {
            let Node::Loop(l) = &mut nodes[i] else {
                return false;
            };
            let side = if lower_side {
                &mut l.lower
            } else {
                &mut l.upper
            };
            let Some(c) = side.as_const() else {
                return false;
            };
            let smaller = if delta_half { c / 2 } else { c - 1 };
            if smaller < 0 || smaller >= c {
                return false;
            }
            *side = cst(smaller);
            true
        });
        if changed == Some(true) {
            out.push(p);
        }
    }
    out
}

/// Candidate programs with the statement at `path` simplified.
fn simplify_stmt_at(program: &Program, path: &[usize]) -> Vec<Program> {
    let mut out = Vec::new();
    for mode in 0..3 {
        let mut p = program.clone();
        let changed = with_node_list(&mut p, path, |nodes, i| {
            let Node::Computation(c) = &mut nodes[i] else {
                return false;
            };
            match mode {
                // Drop the reduction (plain assignment).
                0 => {
                    if c.reduction.is_none() {
                        return false;
                    }
                    c.reduction = None;
                    true
                }
                // Keep only the first load of the right-hand side.
                1 => {
                    let loads = collect_loads(&c.value);
                    match loads.into_iter().next() {
                        Some(first) if c.value != ScalarExpr::Load(first.clone()) => {
                            c.value = ScalarExpr::Load(first);
                            true
                        }
                        _ => false,
                    }
                }
                // Replace the right-hand side with a constant.
                _ => {
                    if c.value == fconst(1.0) {
                        return false;
                    }
                    c.value = fconst(1.0);
                    true
                }
            }
        });
        if changed == Some(true) {
            out.push(cleanup(p));
        }
    }
    out
}

fn collect_loads(e: &ScalarExpr) -> Vec<ArrayRef> {
    let mut out = Vec::new();
    fn walk(e: &ScalarExpr, out: &mut Vec<ArrayRef>) {
        match e {
            ScalarExpr::Load(r) => out.push(r.clone()),
            ScalarExpr::Unary(_, a) => walk(a, out),
            ScalarExpr::Binary(_, a, b) => {
                walk(a, out);
                walk(b, out);
            }
            ScalarExpr::Select {
                lhs,
                rhs,
                then,
                otherwise,
                ..
            } => {
                walk(lhs, out);
                walk(rhs, out);
                walk(then, out);
                walk(otherwise, out);
            }
            ScalarExpr::Const(_) | ScalarExpr::Param(_) | ScalarExpr::Index(_) => {}
        }
    }
    walk(e, &mut out);
    out
}

/// Drops declarations (arrays, scalar params) no statement references any
/// more, so shrunk programs do not carry dead arrays around.
fn cleanup(mut program: Program) -> Program {
    let mut used_arrays = std::collections::BTreeSet::new();
    let mut used_params = std::collections::BTreeSet::new();
    fn note_expr(e: &Expr, params: &mut std::collections::BTreeSet<Var>) {
        params.extend(e.vars());
    }
    fn note_scalar(
        e: &ScalarExpr,
        arrays: &mut std::collections::BTreeSet<Var>,
        params: &mut std::collections::BTreeSet<Var>,
    ) {
        match e {
            ScalarExpr::Load(r) => {
                arrays.insert(r.array.clone());
                for idx in &r.indices {
                    note_expr(idx, params);
                }
            }
            ScalarExpr::Param(p) => {
                params.insert(p.clone());
            }
            ScalarExpr::Index(e) => note_expr(e, params),
            ScalarExpr::Const(_) => {}
            ScalarExpr::Unary(_, a) => note_scalar(a, arrays, params),
            ScalarExpr::Binary(_, a, b) => {
                note_scalar(a, arrays, params);
                note_scalar(b, arrays, params);
            }
            ScalarExpr::Select {
                lhs,
                rhs,
                then,
                otherwise,
                ..
            } => {
                for part in [lhs, rhs, then, otherwise] {
                    note_scalar(part, arrays, params);
                }
            }
        }
    }
    fn walk(
        n: &Node,
        arrays: &mut std::collections::BTreeSet<Var>,
        params: &mut std::collections::BTreeSet<Var>,
    ) {
        match n {
            Node::Loop(l) => {
                note_expr(&l.lower, params);
                note_expr(&l.upper, params);
                for c in &l.body {
                    walk(c, arrays, params);
                }
            }
            Node::Computation(c) => {
                arrays.insert(c.target.array.clone());
                for idx in &c.target.indices {
                    note_expr(idx, params);
                }
                note_scalar(&c.value, arrays, params);
            }
            Node::Call(call) => {
                arrays.insert(call.output.clone());
                for input in &call.inputs {
                    arrays.insert(input.clone());
                }
                for d in &call.dims {
                    note_expr(d, params);
                }
            }
        }
    }
    for n in &program.body {
        walk(n, &mut used_arrays, &mut used_params);
    }
    // Dimensions of retained arrays may reference params.
    for name in &used_arrays {
        if let Some(a) = program.arrays.get(name) {
            for d in &a.dims {
                note_expr(d, &mut used_params);
            }
        }
    }
    program.arrays.retain(|name, _| used_arrays.contains(name));
    program
        .scalar_params
        .retain(|name, _| used_params.contains(name));
    // Integer params stay: iterators also show up as `variables()`, and a
    // param that became unused is harmless for failure preservation.
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::oracle::{check_one, Verdict};

    /// A synthetic failure: "fails" whenever the program still contains a
    /// reduction statement. The shrinker must find a near-minimal program
    /// with one reduction left.
    #[test]
    fn shrinks_to_a_minimal_reduction_program() {
        let config = GenConfig::default();
        let mut tried = 0;
        for seed in 0..200 {
            let p = generate(seed, &config);
            let has_reduction =
                |p: &Program| p.computations().iter().any(|c| c.reduction.is_some());
            if !has_reduction(&p) {
                continue;
            }
            tried += 1;
            let shrunk = shrink(&p, has_reduction, 200);
            assert!(has_reduction(&shrunk.program), "shrinking lost the failure");
            assert!(shrunk.program.validate().is_ok());
            let comps = shrunk.program.computations().len();
            assert!(
                comps <= 2,
                "seed {seed}: shrunk program still has {comps} statements:\n{}",
                loop_ir::printer::print_program(&shrunk.program)
            );
            if tried >= 10 {
                break;
            }
        }
        assert!(tried > 0, "no generated program had a reduction");
    }

    #[test]
    fn shrinking_a_passing_program_is_a_fixpoint() {
        let p = generate(3, &GenConfig::default());
        let never_fails = |_: &Program| false;
        let shrunk = shrink(&p, never_fails, 100);
        assert_eq!(shrunk.steps, 0);
        assert_eq!(shrunk.program, p);
    }

    #[test]
    fn same_failure_predicate_tracks_the_oracle_key() {
        let p = generate(11, &GenConfig::default());
        let failure = Verdict::Mismatch {
            oracle: "exec",
            detail: "synthetic".into(),
        };
        // check_one on a healthy program passes, so the predicate is false.
        let pred = same_failure(&failure, |q: &Program| check_one(q, "exec"));
        assert!(!pred(&p));
    }
}
