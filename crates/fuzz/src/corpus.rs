//! The graduating corpus: interesting generated programs, committed as
//! frontend-syntax `.loop` files and replayed as a regression test.
//!
//! A program "graduates" when its structural feature set is not already
//! covered by the corpus. Features are coarse shape descriptors (depth,
//! strides, reductions, parametric bounds, ...), so the corpus stays small
//! while still pinning every generator shape the oracles exercise. Each
//! file carries a `// daisyfuzz:` header recording the seed and features;
//! the lexer skips `//` comments, so the files parse unchanged.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use loop_ir::prelude::*;
use loop_ir::source::to_source;
use loop_ir::visit::{walk_computations, walk_loops};

/// Structural features describing why a case is interesting.
pub fn features_of(program: &Program) -> BTreeSet<String> {
    let mut features = BTreeSet::new();
    let loops = walk_loops(&program.body);
    let iterators: BTreeSet<&Var> = loops.iter().map(|l| &l.iter).collect();
    for l in &loops {
        if l.step != 1 {
            features.insert("strided".to_string());
        }
        if l.lower.as_const().is_none() || l.upper.as_const().is_none() {
            features.insert("parametric-bounds".to_string());
        }
        let bound_vars: BTreeSet<Var> = l.lower.vars().into_iter().chain(l.upper.vars()).collect();
        if bound_vars
            .iter()
            .any(|v| v != &l.iter && iterators.contains(v))
        {
            features.insert("triangular".to_string());
        }
        if l.schedule.parallel {
            features.insert("pragma-parallel".to_string());
        }
    }
    let max_depth = walk_computations(&program.body)
        .iter()
        .map(|c| c.depth())
        .max()
        .unwrap_or(0);
    features.insert(format!("depth-{max_depth}"));
    let top_level_loops = program
        .body
        .iter()
        .filter(|n| matches!(n, Node::Loop(_)))
        .count();
    if top_level_loops > 1 {
        features.insert("multi-nest".to_string());
    }
    for comp in program.computations() {
        if let Some(op) = comp.reduction {
            features.insert(format!("reduction-{op:?}").to_lowercase());
        }
        if comp.target.indices.len() == 1
            && comp.target.indices[0].as_const() == Some(0)
            && comp.reduction.is_some()
        {
            features.insert("scalar-accumulator".to_string());
        }
        let loads = comp.value.loads();
        for idx in comp
            .target
            .indices
            .iter()
            .chain(loads.iter().flat_map(|r| r.indices.iter()))
        {
            classify_subscript(idx, &mut features);
        }
        if loads.len() > 1 {
            features.insert("multi-load".to_string());
        }
    }
    if program.computations().len() > 2 {
        features.insert("multi-statement".to_string());
    }
    features
}

fn classify_subscript(e: &Expr, features: &mut BTreeSet<String>) {
    match e {
        Expr::Sub(a, b) if matches!(**a, Expr::Const(_)) && matches!(**b, Expr::Var(_)) => {
            features.insert("reversed-subscript".to_string());
        }
        Expr::Add(_, b) | Expr::Sub(_, b) if matches!(**b, Expr::Const(c) if c != 0) => {
            features.insert("staggered-subscript".to_string());
        }
        Expr::Mul(..) => {
            features.insert("scaled-subscript".to_string());
        }
        _ => {}
    }
}

/// A key naming a feature set (stable across runs: features are sorted).
pub fn feature_key(features: &BTreeSet<String>) -> String {
    features.iter().cloned().collect::<Vec<_>>().join(",")
}

/// One corpus entry on disk.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// File path.
    pub path: PathBuf,
    /// Parsed program.
    pub program: Program,
}

/// Loads every `.loop` file under `dir`, sorted by file name. Errors name
/// the offending file.
pub fn load_corpus(dir: &Path) -> std::result::Result<Vec<CorpusCase>, String> {
    let mut cases = Vec::new();
    if !dir.exists() {
        return Ok(cases);
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|x| x == "loop").unwrap_or(false))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let program = loop_ir::parser::parse_program(&text)
            .map_err(|e| format!("parsing {}: {e}", path.display()))?;
        cases.push(CorpusCase { path, program });
    }
    Ok(cases)
}

/// Renders a corpus file: metadata header plus the program in frontend
/// syntax (the header lines are `//` comments the lexer skips).
pub fn render_case(program: &Program, seed: u64) -> std::result::Result<String, String> {
    let body = to_source(program).map_err(|e| format!("emitting source: {e}"))?;
    let features = feature_key(&features_of(program));
    Ok(format!(
        "// daisyfuzz: seed={seed:#018x}\n// features: {features}\n{body}"
    ))
}

/// Promotion outcome for one candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Promotion {
    /// Written to disk under the returned path.
    Graduated(PathBuf),
    /// Feature set already covered.
    Covered,
    /// Corpus is at capacity.
    Full,
}

/// Promotes `program` into `dir` if its feature set adds coverage.
/// The corpus is capped at `cap` files so it stays reviewable.
pub fn promote(
    dir: &Path,
    program: &Program,
    seed: u64,
    cap: usize,
) -> std::result::Result<Promotion, String> {
    let existing = load_corpus(dir)?;
    let covered: BTreeSet<String> = existing
        .iter()
        .map(|c| feature_key(&features_of(&c.program)))
        .collect();
    let key = feature_key(&features_of(program));
    if covered.contains(&key) {
        return Ok(Promotion::Covered);
    }
    if existing.len() >= cap {
        return Ok(Promotion::Full);
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let name = format!("seed_{seed:016x}.loop");
    let path = dir.join(name);
    let text = render_case(program, seed)?;
    std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(Promotion::Graduated(path))
}

/// The repo-relative corpus directory, resolved from this crate's
/// manifest (crates/fuzz → repo root → fuzz/corpus).
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    fn temp_corpus() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "daisyfuzz-corpus-{}-{:x}",
            std::process::id(),
            generate(7, &GenConfig::default()).structural_hash()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn corpus_files_round_trip_through_the_parser() {
        let dir = temp_corpus();
        let config = GenConfig::default();
        let program = generate(42, &config);
        let outcome = promote(&dir, &program, 42, 24).expect("promotion io");
        assert!(matches!(outcome, Promotion::Graduated(_)));
        let cases = load_corpus(&dir).expect("load");
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].program, program, "header comments must be inert");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_feature_sets_do_not_graduate() {
        let dir = temp_corpus();
        let config = GenConfig::default();
        let program = generate(42, &config);
        promote(&dir, &program, 42, 24).expect("first");
        let again = promote(&dir, &program, 43, 24).expect("second");
        assert_eq!(again, Promotion::Covered);
        let cases = load_corpus(&dir).expect("load");
        assert_eq!(cases.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn the_cap_is_respected() {
        let dir = temp_corpus();
        let config = GenConfig::default();
        let mut graduated = 0usize;
        for seed in 0..200u64 {
            match promote(&dir, &generate(seed, &config), seed, 5).expect("io") {
                Promotion::Graduated(_) => graduated += 1,
                Promotion::Covered => {}
                Promotion::Full => break,
            }
        }
        assert!(graduated <= 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn features_describe_shape_not_noise() {
        let config = GenConfig::default();
        // Distinct seeds with the same shape map to the same key; the
        // generator's menu guarantees some collisions within 100 seeds.
        let keys: BTreeSet<String> = (0..100u64)
            .map(|s| feature_key(&features_of(&generate(s, &config))))
            .collect();
        assert!(keys.len() < 100, "feature keys must abstract over noise");
        assert!(keys.len() > 5, "feature keys must still distinguish shapes");
    }
}
