//! The differential oracles: every fast path of the pipeline checked
//! against its retained reference on one generated program.
//!
//! Each oracle runs under [`std::panic::catch_unwind`], so a crash in any
//! engine is contained and reported as a [`Verdict::Panic`] rather than
//! killing the campaign. The oracles are:
//!
//! * **exec** — the compiled execution engine versus the tree-walking
//!   reference interpreter (`machine::interp::reference`): bit-identical
//!   array state and statement counts, or the *same error kind* when the
//!   program faults.
//! * **trace** — the compiled access stream versus the symbolic walker
//!   [`machine::trace::walk_accesses_symbolic`]: identical entry sequences.
//! * **cache** — the run-compressed simulation versus the per-access
//!   pipeline and the naive LRU reference: bit-identical counters on the
//!   tiny test machine whose four sets force conflicts.
//! * **analytic** — the closed-form cache tier ([`machine::estimate_cache`])
//!   versus the exact simulator: the estimated miss counts must stay within
//!   the estimate's *own reported* error bound on both levels, and access
//!   counts must match exactly.
//! * **normalize** — the normalization pipeline: the normalized program
//!   validates, normalization is idempotent, the normalized program still
//!   agrees with *its* references (exec + trace), and its results match
//!   the original program to fp-reordering tolerance.
//! * **schedule** — the daisy scheduler driven headlessly: outcomes are
//!   bit-identical across scheduler parallelism levels and across a
//!   cold-vs-warm (persist + warm-start) round trip, and the scheduled
//!   program still validates and executes differentially.

use std::panic::{catch_unwind, AssertUnwindSafe};

use daisy::{DaisyConfig, DaisyScheduler};
use loop_ir::prelude::*;
use machine::interp::{reference, ProgramData};
use machine::{
    simulate_cache, simulate_cache_per_access, simulate_cache_reference, Interpreter,
    MachineConfig, TraceEntry,
};
use normalize::Normalizer;

/// Names of all oracles, in the order [`check_all`] runs them.
pub const ORACLES: [&str; 6] = [
    "exec",
    "trace",
    "cache",
    "analytic",
    "normalize",
    "schedule",
];

/// Outcome of running one oracle (or a whole oracle battery) on a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every cross-check agreed.
    Pass,
    /// A fast path disagreed with its reference.
    Mismatch {
        /// Which oracle observed the disagreement.
        oracle: &'static str,
        /// Human-readable description of the divergence.
        detail: String,
    },
    /// An engine panicked; the panic was contained.
    Panic {
        /// Which oracle was running when the panic escaped.
        oracle: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Pass`].
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// The oracle that failed, or `None` for a pass.
    pub fn oracle(&self) -> Option<&'static str> {
        match self {
            Verdict::Pass => None,
            Verdict::Mismatch { oracle, .. } | Verdict::Panic { oracle, .. } => Some(oracle),
        }
    }

    /// Coarse failure class used by the shrinker to preserve the failure
    /// while reducing: `(oracle, is_panic)`.
    pub fn failure_key(&self) -> Option<(&'static str, bool)> {
        match self {
            Verdict::Pass => None,
            Verdict::Mismatch { oracle, .. } => Some((oracle, false)),
            Verdict::Panic { oracle, .. } => Some((oracle, true)),
        }
    }
}

/// Which oracles a campaign runs. The schedule oracle costs two scheduler
/// constructions and a store round trip per case, so campaigns subsample it.
#[derive(Debug, Clone)]
pub struct OracleSelection {
    /// Run the exec differential.
    pub exec: bool,
    /// Run the trace differential.
    pub trace: bool,
    /// Run the three-way cache differential.
    pub cache: bool,
    /// Run the analytic-bracket oracle (estimates within their own error
    /// bound of the exact counters).
    pub analytic: bool,
    /// Run the normalization oracle.
    pub normalize: bool,
    /// Run the schedule oracle on every `schedule_every`-th case (0 = never).
    pub schedule_every: u64,
}

impl Default for OracleSelection {
    fn default() -> Self {
        OracleSelection {
            exec: true,
            trace: true,
            cache: true,
            analytic: true,
            normalize: true,
            schedule_every: 16,
        }
    }
}

/// An oracle: `Ok(())` on agreement, `Err(detail)` on divergence.
type OracleFn = fn(&Program) -> std::result::Result<(), String>;

/// Runs every selected oracle on `program`, stopping at the first failure.
/// `case_index` drives the schedule-oracle subsampling.
pub fn check_all(program: &Program, oracles: &OracleSelection, case_index: u64) -> Verdict {
    let battery: [(&'static str, bool, OracleFn); 6] = [
        ("exec", oracles.exec, exec_oracle),
        ("trace", oracles.trace, trace_oracle),
        ("cache", oracles.cache, cache_oracle),
        ("analytic", oracles.analytic, analytic_oracle),
        ("normalize", oracles.normalize, normalize_oracle),
        (
            "schedule",
            oracles.schedule_every != 0 && case_index.is_multiple_of(oracles.schedule_every.max(1)),
            schedule_oracle,
        ),
    ];
    for (name, enabled, oracle) in battery {
        if !enabled {
            continue;
        }
        match contain(name, || oracle(program)) {
            Verdict::Pass => {}
            failure => return failure,
        }
    }
    Verdict::Pass
}

/// Runs a single oracle by name (as [`Verdict::oracle`] reports it) — the
/// shrinker re-runs exactly the failing oracle.
pub fn check_one(program: &Program, oracle: &str) -> Verdict {
    let f: OracleFn = match oracle {
        "exec" => exec_oracle,
        "trace" => trace_oracle,
        "cache" => cache_oracle,
        "analytic" => analytic_oracle,
        "normalize" => normalize_oracle,
        "schedule" => schedule_oracle,
        other => {
            return Verdict::Mismatch {
                oracle: "exec",
                detail: format!("unknown oracle {other:?}"),
            }
        }
    };
    let name = ORACLES
        .iter()
        .find(|n| **n == oracle)
        .copied()
        .unwrap_or("exec");
    contain(name, || f(program))
}

/// Runs `f` with panic containment, mapping the three outcomes onto a
/// [`Verdict`].
fn contain(oracle: &'static str, f: impl FnOnce() -> std::result::Result<(), String>) -> Verdict {
    // The span closes *after* catch_unwind resolves, so a contained panic
    // still exits the span cleanly (the guard tolerates unwinding anyway).
    let _span = telemetry::span(oracle);
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(())) => Verdict::Pass,
        Ok(Err(detail)) => Verdict::Mismatch { oracle, detail },
        Err(payload) => Verdict::Panic {
            oracle,
            message: panic_message(payload),
        },
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// The oracles
// ---------------------------------------------------------------------------

fn exec_oracle(program: &Program) -> std::result::Result<(), String> {
    exec_differential(program, "")
}

/// The exec differential, reusable on derived programs (`label` prefixes
/// the failure detail so normalize/schedule failures say which program
/// variant diverged).
fn exec_differential(program: &Program, label: &str) -> std::result::Result<(), String> {
    let mut slow_data =
        ProgramData::seeded(program).map_err(|e| format!("{label}storage allocation: {e}"))?;
    let mut slow = reference::Interpreter::new();
    let slow_result = slow.run(program, &mut slow_data);

    let mut fast_data =
        ProgramData::seeded(program).map_err(|e| format!("{label}storage allocation: {e}"))?;
    let mut fast = Interpreter::new();
    let fast_result = fast.run(program, &mut fast_data);

    match (slow_result, fast_result) {
        (Ok(()), Ok(())) => {
            if slow.executed_statements != fast.executed_statements {
                return Err(format!(
                    "{label}statement counts diverge: reference {} vs compiled {}",
                    slow.executed_statements, fast.executed_statements
                ));
            }
            if slow_data != fast_data {
                return Err(format!(
                    "{label}array state diverges between reference and compiled execution ({})",
                    first_data_difference(program, &slow_data, &fast_data)
                ));
            }
            Ok(())
        }
        (Err(a), Err(b)) => {
            if std::mem::discriminant(&a) == std::mem::discriminant(&b) {
                Ok(())
            } else {
                Err(format!(
                    "{label}error kinds diverge: reference `{a}` vs compiled `{b}`"
                ))
            }
        }
        (Err(a), Ok(())) => Err(format!(
            "{label}reference faults (`{a}`) but the compiled engine succeeds"
        )),
        (Ok(()), Err(b)) => Err(format!(
            "{label}compiled engine faults (`{b}`) but the reference succeeds"
        )),
    }
}

fn first_data_difference(program: &Program, a: &ProgramData, b: &ProgramData) -> String {
    for name in program.arrays.keys() {
        if let Some(diff) = a.max_abs_diff(b, name.as_str()) {
            if diff != 0.0 {
                return format!("first differing array {name}, max |delta| = {diff:e}");
            }
        }
    }
    "arrays equal elementwise; metadata differs".to_string()
}

fn trace_oracle(program: &Program) -> std::result::Result<(), String> {
    let compiled =
        machine::exec::CompiledProgram::lower(program).map_err(|e| format!("lowering: {e}"))?;
    let mut fast = Vec::new();
    let mut sink = CollectSink(&mut fast);
    let fast_result = compiled.stream(&mut sink);
    let mut slow = Vec::new();
    let slow_result = machine::trace::walk_accesses_symbolic(program, |e| slow.push(e));
    match (fast_result, slow_result) {
        (Ok(fast_n), Ok(slow_n)) => {
            if fast_n != slow_n {
                return Err(format!(
                    "access counts diverge: compiled stream {fast_n} vs symbolic walk {slow_n}"
                ));
            }
            if fast != slow {
                let at = fast
                    .iter()
                    .zip(&slow)
                    .position(|(a, b)| a != b)
                    .unwrap_or(fast.len().min(slow.len()));
                return Err(format!(
                    "access streams diverge at entry {at}: compiled {:?} vs symbolic {:?}",
                    fast.get(at),
                    slow.get(at)
                ));
            }
            Ok(())
        }
        (Err(a), Err(b)) if std::mem::discriminant(&a) == std::mem::discriminant(&b) => Ok(()),
        (a, b) => Err(format!(
            "stream outcomes diverge: compiled {:?} vs symbolic {:?}",
            a.err().map(|e| e.to_string()),
            b.err().map(|e| e.to_string())
        )),
    }
}

struct CollectSink<'a>(&'a mut Vec<TraceEntry>);

impl machine::AccessSink for CollectSink<'_> {
    fn access(&mut self, entry: TraceEntry) {
        self.0.push(entry);
    }
}

fn cache_oracle(program: &Program) -> std::result::Result<(), String> {
    let machine = MachineConfig::tiny_for_tests();
    let fast = simulate_cache(program, &machine);
    let base = simulate_cache_per_access(program, &machine);
    let naive = simulate_cache_reference(program, &machine);
    let (fast, base, naive) = match (fast, base, naive) {
        (Ok(f), Ok(b), Ok(n)) => (f, b, n),
        (Err(f), Err(b), Err(n)) => {
            let (df, db, dn) = (
                std::mem::discriminant(&f),
                std::mem::discriminant(&b),
                std::mem::discriminant(&n),
            );
            if df == db && db == dn {
                return Ok(());
            }
            return Err(format!(
                "simulation error kinds diverge: run-compressed `{f}`, per-access `{b}`, reference `{n}`"
            ));
        }
        (f, b, n) => {
            return Err(format!(
                "simulation outcomes diverge: run-compressed {:?}, per-access {:?}, reference {:?}",
                f.err().map(|e| e.to_string()),
                b.err().map(|e| e.to_string()),
                n.err().map(|e| e.to_string()),
            ))
        }
    };
    for (label, accesses, l1, l2) in [
        ("per-access", base.accesses(), base.l1(), base.l2()),
        ("reference", naive.accesses(), naive.l1(), naive.l2()),
    ] {
        if fast.accesses() != accesses {
            return Err(format!(
                "access counts diverge from {label}: {} vs {accesses}",
                fast.accesses()
            ));
        }
        if fast.l1() != l1 {
            return Err(format!(
                "L1 counters diverge from {label}: {:?} vs {l1:?}",
                fast.l1()
            ));
        }
        if fast.l2() != l2 {
            return Err(format!(
                "L2 counters diverge from {label}: {:?} vs {l2:?}",
                fast.l2()
            ));
        }
    }
    Ok(())
}

fn analytic_oracle(program: &Program) -> std::result::Result<(), String> {
    let machine = MachineConfig::tiny_for_tests();
    let exact = simulate_cache(program, &machine);
    let estimate = machine::estimate_cache(program, &machine);
    let (exact, estimate) = match (exact, estimate) {
        (Ok(e), Ok(a)) => (e, a),
        (Err(e), Err(a)) => {
            if std::mem::discriminant(&e) == std::mem::discriminant(&a) {
                return Ok(());
            }
            return Err(format!(
                "outcome kinds diverge: exact `{e}` vs analytic `{a}`"
            ));
        }
        (e, a) => {
            return Err(format!(
                "outcomes diverge: exact {:?} vs analytic {:?}",
                e.err().map(|e| e.to_string()),
                a.err().map(|e| e.to_string()),
            ))
        }
    };
    if estimate.accesses != exact.accesses() {
        return Err(format!(
            "access counts diverge: analytic {} vs exact {}",
            estimate.accesses,
            exact.accesses()
        ));
    }
    if !estimate.brackets(&exact.l1(), &exact.l2()) {
        return Err(format!(
            "analytic miss estimate escapes its error bound {}: \
             L1 {} vs exact {}, L2 {} vs exact {}",
            estimate.error_bound,
            estimate.l1.misses,
            exact.l1().misses,
            estimate.l2.misses,
            exact.l2().misses
        ));
    }
    Ok(())
}

fn normalize_oracle(program: &Program) -> std::result::Result<(), String> {
    let normalized = Normalizer::new()
        .run(program)
        .map_err(|e| format!("normalization fails: {e}"))?;
    normalized
        .program
        .validate()
        .map_err(|e| format!("normalized program is invalid: {e}"))?;
    let twice = Normalizer::new()
        .run(&normalized.program)
        .map_err(|e| format!("re-normalization fails: {e}"))?;
    if twice.program != normalized.program {
        return Err("normalization is not idempotent".to_string());
    }
    // The normalized program must still agree with its own references.
    exec_differential(&normalized.program, "normalized program: ")?;
    // And preserve the original semantics to fp-reordering tolerance.
    semantics_match(program, &normalized.program, "normalization")
}

/// Runs both programs on seeded storage and compares every array of the
/// original to fp-reordering tolerance; faults must agree in kind.
fn semantics_match(
    original: &Program,
    derived: &Program,
    what: &str,
) -> std::result::Result<(), String> {
    let mut before = ProgramData::seeded(original).map_err(|e| e.to_string())?;
    let before_result = Interpreter::new().run(original, &mut before);
    let mut after = ProgramData::seeded(derived).map_err(|e| e.to_string())?;
    let after_result = Interpreter::new().run(derived, &mut after);
    match (before_result, after_result) {
        (Ok(()), Ok(())) => {
            for name in original.arrays.keys() {
                let Some(diff) = before.max_abs_diff(&after, name.as_str()) else {
                    return Err(format!("{what} dropped or reshaped array {name}"));
                };
                // `>=` plus the NaN check keeps the semantics of
                // `!(diff < 1e-9)`: a NaN difference is a failure.
                if diff >= 1e-9 || diff.is_nan() {
                    return Err(format!(
                        "{what} changes results: array {name} differs by {diff:e}"
                    ));
                }
            }
            Ok(())
        }
        (Err(a), Err(b)) if std::mem::discriminant(&a) == std::mem::discriminant(&b) => Ok(()),
        (a, b) => Err(format!(
            "{what} changes the execution outcome: original {:?}, derived {:?}",
            a.err().map(|e| e.to_string()),
            b.err().map(|e| e.to_string())
        )),
    }
}

/// Headless scheduling config: tuning enabled against an in-memory database
/// seeded from the case itself, on the tiny machine so cost-model cache
/// simulations stay cheap.
fn daisy_config() -> DaisyConfig {
    DaisyConfig {
        normalize: true,
        transfer_tuning: false,
        idiom_detection: true,
        threads: 4,
        machine: MachineConfig::tiny_for_tests(),
        neighbors: 1,
        parallelism: 1,
        simulation_parallelism: 1,
        cache_mode: machine::CostMode::Exact,
    }
}

fn schedule_oracle(program: &Program) -> std::result::Result<(), String> {
    // Parallelism must never change the outcome (the documented contract of
    // DaisyConfig::parallelism).
    let sequential = DaisyScheduler::new(daisy_config());
    let cold = sequential.schedule(program);
    let mut parallel = DaisyScheduler::new(daisy_config());
    parallel.set_parallelism(4);
    let wide = parallel.schedule(program);
    if cold != wide {
        return Err("ScheduleOutcome diverges between scheduler parallelism 1 and 4".to_string());
    }
    cold.program
        .validate()
        .map_err(|e| format!("scheduled program is invalid: {e}"))?;
    // Scheduling must not change what the program computes.
    semantics_match(program, &cold.program, "scheduling")?;
    // Cold-vs-warm: persisting the (possibly empty) database and warm
    // starting a fresh scheduler from it must reproduce the outcome
    // bit-identically.
    let dir = std::env::temp_dir().join(format!(
        "daisyfuzz-store-{}-{:016x}",
        std::process::id(),
        program.structural_hash()
    ));
    std::fs::create_dir_all(&dir).map_err(|e| format!("store dir: {e}"))?;
    let path = dir.join("case.tunedb");
    let result = (|| {
        sequential
            .persist(&path)
            .map_err(|e| format!("persist: {e}"))?;
        let mut warmed = DaisyScheduler::new(daisy_config());
        warmed
            .warm_start(&path)
            .map_err(|e| format!("warm start: {e}"))?;
        let warm = warmed.schedule(program);
        if warm != cold {
            return Err(
                "ScheduleOutcome diverges between cold and warm-started schedulers".to_string(),
            );
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn generated_programs_pass_every_oracle() {
        let config = GenConfig::default();
        let oracles = OracleSelection {
            schedule_every: 8,
            ..OracleSelection::default()
        };
        for seed in 0..40 {
            let p = generate(seed, &config);
            let verdict = check_all(&p, &oracles, seed);
            assert!(
                verdict.is_pass(),
                "seed {seed} fails: {verdict:?}\n{}",
                loop_ir::printer::print_program(&p)
            );
        }
    }

    #[test]
    fn a_broken_program_is_reported_not_propagated() {
        // An out-of-bounds program: both engines fault with the same error
        // kind, which counts as agreement — and never as an escape.
        let p = loop_ir::parser::parse_program(
            "program oob { param N = 4; array A[N]; for i in 0..N { A[i + 3] = 1.0; } }",
        )
        .unwrap();
        assert!(check_all(&p, &OracleSelection::default(), 0).is_pass());
    }

    #[test]
    fn contain_reports_panics_as_verdicts() {
        let verdict = contain("exec", || panic!("boom {}", 7));
        assert_eq!(
            verdict,
            Verdict::Panic {
                oracle: "exec",
                message: "boom 7".to_string()
            }
        );
    }
}
