//! The differential campaign: generate, check, contain, shrink, report.
//!
//! A campaign derives one independent sub-seed per case from the campaign
//! seed (SplitMix64 over the case index), generates a program, runs the
//! oracle battery with panic containment, and on any failure shrinks the
//! program before recording it. The default panic hook is silenced for the
//! duration of the campaign so contained panics do not spray backtraces;
//! the panic *payload* still reaches the report through `catch_unwind`.
//!
//! For mutation-testing the farm itself (the acceptance criterion that an
//! injected mismatch is caught, shrunk and reported), [`CampaignConfig::inject`]
//! deliberately corrupts one comparison: the campaign re-checks each case
//! with a fault injected into the named oracle's fast-path result, which
//! must surface as a mismatch through exactly the same catch → shrink →
//! report path a real bug would take.

use std::time::Instant;

use loop_ir::prelude::*;
use loop_ir::source::to_source;
use telemetry::json::json_string;

use crate::gen::{generate, GenConfig};
use crate::oracle::{check_all, check_one, OracleSelection, Verdict};
use crate::shrink::{same_failure, shrink};

/// A deliberately injected fault, for testing the farm end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inject {
    /// Pretend the exec fast path corrupted one element.
    ExecMismatch,
    /// Pretend an engine panicked on programs with a reduction statement.
    Panic,
}

impl Inject {
    /// Parses the `--inject` CLI value.
    pub fn parse(s: &str) -> Option<Inject> {
        match s {
            "exec" => Some(Inject::ExecMismatch),
            "panic" => Some(Inject::Panic),
            _ => None,
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign seed; case `i` uses sub-seed `case_seed(seed, i)`.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub budget: u64,
    /// Generator envelope.
    pub gen: GenConfig,
    /// Which oracles run (and how often the schedule oracle samples).
    pub oracles: OracleSelection,
    /// Maximum accepted shrink reductions per failure.
    pub shrink_steps: usize,
    /// Stop after this many failures (0 = collect all).
    pub max_failures: usize,
    /// Deliberate fault injection for farm self-tests.
    pub inject: Option<Inject>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xDA15,
            budget: 1000,
            gen: GenConfig::default(),
            oracles: OracleSelection::default(),
            shrink_steps: 400,
            max_failures: 10,
            inject: None,
        }
    }
}

/// One recorded failure, fully replayable.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Case index within the campaign.
    pub index: u64,
    /// The derived per-case seed (`daisyfuzz replay --seed <this>`).
    pub case_seed: u64,
    /// Which oracle failed.
    pub oracle: String,
    /// `true` when the failure was a contained panic.
    pub panicked: bool,
    /// Divergence description or panic message.
    pub detail: String,
    /// The original program, in frontend syntax.
    pub original: String,
    /// The shrunk program, in frontend syntax.
    pub shrunk: String,
    /// Accepted shrink reductions.
    pub shrink_steps: usize,
}

/// Campaign result summary.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign seed.
    pub seed: u64,
    /// Cases requested.
    pub budget: u64,
    /// Cases actually run (== budget unless stopped early by max_failures).
    pub cases: u64,
    /// Contained panics (each also appears in `failures`).
    pub panics_contained: u64,
    /// All recorded failures, shrunk.
    pub failures: Vec<Failure>,
    /// Wall-clock seconds.
    pub elapsed_secs: f64,
}

impl CampaignReport {
    /// `true` when every case passed every oracle.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report as JSON (hand-rolled; the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        json.push_str("  \"generated_by\": \"daisyfuzz run\",\n");
        json.push_str(&format!("  \"seed\": {},\n", self.seed));
        json.push_str(&format!("  \"budget\": {},\n", self.budget));
        json.push_str(&format!("  \"cases\": {},\n", self.cases));
        json.push_str(&format!(
            "  \"panics_contained\": {},\n",
            self.panics_contained
        ));
        json.push_str(&format!("  \"elapsed_secs\": {:.3},\n", self.elapsed_secs));
        json.push_str(&format!("  \"clean\": {},\n", self.clean()));
        json.push_str("  \"failures\": [\n");
        for (i, f) in self.failures.iter().enumerate() {
            json.push_str("    {\n");
            json.push_str(&format!("      \"index\": {},\n", f.index));
            json.push_str(&format!("      \"case_seed\": {},\n", f.case_seed));
            json.push_str(&format!("      \"oracle\": {},\n", json_string(&f.oracle)));
            json.push_str(&format!("      \"panicked\": {},\n", f.panicked));
            json.push_str(&format!("      \"detail\": {},\n", json_string(&f.detail)));
            json.push_str(&format!("      \"shrink_steps\": {},\n", f.shrink_steps));
            json.push_str(&format!(
                "      \"original\": {},\n",
                json_string(&f.original)
            ));
            json.push_str(&format!("      \"shrunk\": {}\n", json_string(&f.shrunk)));
            json.push_str(if i + 1 == self.failures.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        json.push_str("  ]\n}\n");
        json
    }
}

/// SplitMix64: derives the independent per-case seed from the campaign
/// seed and case index (the same mix the rand shim uses for seeding).
pub fn case_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Silences the default panic hook while `f` runs, so contained panics do
/// not print backtraces mid-campaign. Restores the previous hook after.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(previous);
    result
}

/// Checks one program, applying any configured fault injection.
fn check_case(program: &Program, config: &CampaignConfig, index: u64) -> Verdict {
    let genuine = check_all(program, &config.oracles, index);
    if !genuine.is_pass() {
        return genuine;
    }
    match config.inject {
        None => genuine,
        Some(Inject::ExecMismatch) => {
            // Simulate a broken exec fast path: the compiled engine "wrote"
            // a corrupted value whenever the program has at least one
            // computation inside a loop (so shrinking has real work to do).
            let dynamic = program
                .computations()
                .iter()
                .any(|c| !c.target.indices.is_empty());
            if dynamic {
                Verdict::Mismatch {
                    oracle: "exec",
                    detail: "injected fault: compiled engine corrupted one element".to_string(),
                }
            } else {
                genuine
            }
        }
        Some(Inject::Panic) => {
            if program.computations().iter().any(|c| c.reduction.is_some()) {
                Verdict::Panic {
                    oracle: "exec",
                    message: "injected fault: engine panicked on a reduction".to_string(),
                }
            } else {
                genuine
            }
        }
    }
}

/// Runs a full campaign.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let start = Instant::now();
    let mut failures = Vec::new();
    let mut panics_contained = 0u64;
    let mut cases = 0u64;

    with_quiet_panics(|| {
        let _campaign = telemetry::span("fuzz");
        for index in 0..config.budget {
            let _case = telemetry::span("case");
            telemetry::counter("fuzz.cases", 1);
            cases = index + 1;
            let seed = case_seed(config.seed, index);
            let program = generate(seed, &config.gen);
            let verdict = check_case(&program, config, index);
            if verdict.is_pass() {
                continue;
            }
            if matches!(verdict, Verdict::Panic { .. }) {
                panics_contained += 1;
                telemetry::counter("fuzz.panics_contained", 1);
            }
            telemetry::counter("fuzz.failures", 1);
            failures.push(shrink_failure(&program, verdict, config, index, seed));
            if config.max_failures != 0 && failures.len() >= config.max_failures {
                break;
            }
        }
    });

    CampaignReport {
        seed: config.seed,
        budget: config.budget,
        cases,
        panics_contained,
        failures,
        elapsed_secs: start.elapsed().as_secs_f64(),
    }
}

/// Replays one case seed exactly as the campaign would run it (including
/// any injection), returning the program and its verdict.
pub fn replay_seed(seed: u64, config: &CampaignConfig) -> (Program, Verdict) {
    let program = generate(seed, &config.gen);
    let verdict = with_quiet_panics(|| {
        // Replay runs every oracle including schedule (index 0 hits the
        // sampled oracle too).
        let mut c = config.clone();
        c.oracles.schedule_every = 1;
        check_case(&program, &c, 0)
    });
    (program, verdict)
}

/// Checks a parsed program (a corpus case or a shrunk reproduction) with
/// the full battery, panics silenced.
pub fn check_program(program: &Program, oracles: &OracleSelection) -> Verdict {
    with_quiet_panics(|| {
        let mut o = oracles.clone();
        o.schedule_every = 1;
        check_all(program, &o, 0)
    })
}

fn shrink_failure(
    program: &Program,
    verdict: Verdict,
    config: &CampaignConfig,
    index: u64,
    seed: u64,
) -> Failure {
    // Re-checking a candidate must reproduce the same failure key. For
    // injected faults the re-check applies the same injection, so the
    // shrinker sees the synthetic bug exactly like a real one.
    let oracle = verdict.oracle().unwrap_or("exec");
    let re_check = |candidate: &Program| -> Verdict {
        if config.inject.is_some() {
            check_case(candidate, config, index)
        } else {
            check_one(candidate, oracle)
        }
    };
    let shrunk = {
        let _span = telemetry::span("shrink");
        shrink(
            program,
            same_failure(&verdict, re_check),
            config.shrink_steps,
        )
    };
    telemetry::counter("fuzz.shrink.steps", shrunk.steps as u64);
    let (panicked, detail) = match &verdict {
        Verdict::Mismatch { detail, .. } => (false, detail.clone()),
        Verdict::Panic { message, .. } => (true, message.clone()),
        Verdict::Pass => unreachable!("only failures are shrunk"),
    };
    Failure {
        index,
        case_seed: seed,
        oracle: oracle.to_string(),
        panicked,
        detail,
        original: source_or_printer(program),
        shrunk: source_or_printer(&shrunk.program),
        shrink_steps: shrunk.steps,
    }
}

/// Frontend syntax when expressible (always, for generated programs), the
/// C-style printer as a fallback so a report is never empty.
fn source_or_printer(program: &Program) -> String {
    to_source(program).unwrap_or_else(|_| loop_ir::printer::print_program(program))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            budget: 120,
            oracles: OracleSelection {
                schedule_every: 40,
                ..OracleSelection::default()
            },
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn a_clean_campaign_records_nothing() {
        let report = run_campaign(&small_config());
        assert!(report.clean(), "failures: {:#?}", report.failures);
        assert_eq!(report.cases, 120);
        assert_eq!(report.panics_contained, 0);
    }

    #[test]
    fn case_seeds_are_independent_of_each_other() {
        let a = case_seed(1, 0);
        let b = case_seed(1, 1);
        let c = case_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, case_seed(1, 0));
    }

    #[test]
    fn injected_mismatches_are_caught_and_shrunk() {
        let mut config = small_config();
        config.inject = Some(Inject::ExecMismatch);
        config.max_failures = 3;
        let report = run_campaign(&config);
        assert!(!report.clean(), "the injected fault must be caught");
        for f in &report.failures {
            assert_eq!(f.oracle, "exec");
            assert!(f.detail.contains("injected fault"));
            assert!(
                f.shrunk.len() <= f.original.len(),
                "shrinking must never grow the program"
            );
            // The shrunk program must still reproduce the injected failure.
            let p = loop_ir::parser::parse_program(&f.shrunk).expect("shrunk program parses");
            let v = check_case(&p, &config, f.index);
            assert_eq!(v.oracle(), Some("exec"));
        }
    }

    #[test]
    fn injected_panics_are_contained_not_fatal() {
        let mut config = small_config();
        config.inject = Some(Inject::Panic);
        config.max_failures = 2;
        let report = run_campaign(&config);
        assert!(report.panics_contained > 0, "no reduction case in budget");
        assert!(report
            .failures
            .iter()
            .all(|f| !f.panicked || f.detail.contains("injected fault")));
    }

    #[test]
    fn reports_render_valid_json_strings() {
        let mut config = small_config();
        config.inject = Some(Inject::ExecMismatch);
        config.max_failures = 1;
        let report = run_campaign(&config);
        let json = report.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"oracle\": \"exec\""));
        // Newlines inside program sources must be escaped.
        assert!(json.contains("\\n"));
    }
}
