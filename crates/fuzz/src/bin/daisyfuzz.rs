//! `daisyfuzz` — the differential fuzz farm CLI.
//!
//! ```text
//! daisyfuzz run --seed 7 --budget 10000 [--json report.json] [--profile prof.json]
//!                                       [--inject exec|panic]
//! daisyfuzz replay <case.loop | --seed N>
//! daisyfuzz corpus promote --seed 7 --budget 500 [--dir fuzz/corpus] [--cap 24]
//! daisyfuzz store --seed 7 --budget 1000 [--json report.json] [--inject no-fsync|no-dirsync|no-rename]
//! ```
//!
//! `run` executes a campaign and exits non-zero if any oracle disagreed or
//! any engine panicked; failures are shrunk and printed (and written to the
//! `--json` report) with the per-case seed needed to replay them. `replay`
//! re-checks one case — a committed `.loop` file or a generated seed —
//! with the full oracle battery. `corpus promote` runs the generator and
//! graduates programs whose structural feature set the corpus does not
//! cover yet. `store` runs the storage fault sweep: an exhaustive
//! power-cut matrix over a scripted tunestore workload, then randomized
//! fault cases; its `--inject` weakens the store's durability on purpose
//! and expects the sweep to catch it.

use std::process::ExitCode;

use fuzz::campaign::{replay_seed, run_campaign, CampaignConfig, Inject};
use fuzz::corpus::{default_corpus_dir, load_corpus, promote, Promotion};
use fuzz::storage::{run_store_sweep, StoreInject, StoreSweepConfig};
use fuzz::Verdict;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("daisyfuzz: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: daisyfuzz <run|replay|corpus|store> [options] (see --help)";

const HELP: &str = "\
daisyfuzz — differential fuzz farm for the loop-nest-normalization pipeline

commands:
  run      run a campaign of generated programs through every oracle
             --seed <u64>     campaign seed (default 3405)
             --budget <n>     number of programs (default 1000)
             --json <path>    write the JSON report here
             --profile <path> record a telemetry profile (spans, counters,
                              oracle time breakdown) to this JSON-lines
                              file; inspect it with daisyprof
             --inject <kind>  deliberately inject a fault (exec|panic);
                              used to test the farm itself
  replay   re-check one case with the full oracle battery
             <case.loop>      a corpus file, or
             --seed <u64>     a generated case seed
  corpus   manage the graduating corpus
             promote          generate programs and commit novel shapes
               --seed <u64>   generator seed base (default 3405)
               --budget <n>   programs to consider (default 500)
               --dir <path>   corpus directory (default fuzz/corpus)
               --cap <n>      max corpus files (default 24)
  store    fault-sweep the crash-safe tunestore (exhaustive power-cut
           matrix, then randomized torn-write/clean-failure/ENOSPC cases)
             --seed <u64>     sweep seed (default 53596, 0xD15C)
             --budget <n>     randomized cases (default 1000)
             --json <path>    write the JSON report here
             --inject <kind>  weaken durability on purpose
                              (no-fsync|no-dirsync|no-rename); the sweep
                              must then FAIL, proving it can see holes

exit status: 0 clean, 1 failures found, 2 usage error";

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(ExitCode::SUCCESS);
    }
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}; {USAGE}")),
        None => Err(USAGE.to_string()),
    }
}

/// `--flag value` pairs, in order of appearance (last occurrence wins).
type Flags = Vec<(String, String)>;

/// Parses `--flag value` pairs plus positional arguments.
fn parse_flags(args: &[String], known: &[&str]) -> Result<(Flags, Vec<String>), String> {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if !known.contains(&name) {
                return Err(format!("unknown option --{name}; {USAGE}"));
            }
            let value = it
                .next()
                .ok_or_else(|| format!("option --{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((flags, positional))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parse_u64(flags: &[(String, String)], name: &str, default: u64) -> Result<u64, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("option --{name} needs an unsigned integer, got {v:?}")),
    }
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["seed", "budget", "json", "profile", "inject"])?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument {extra:?}; {USAGE}"));
    }
    let mut config = CampaignConfig {
        seed: parse_u64(&flags, "seed", 0xD4D)?,
        budget: parse_u64(&flags, "budget", 1000)?,
        ..CampaignConfig::default()
    };
    if let Some(kind) = flag(&flags, "inject") {
        config.inject = Some(
            Inject::parse(kind)
                .ok_or_else(|| format!("option --inject needs exec or panic, got {kind:?}"))?,
        );
    }

    let recorder = flag(&flags, "profile")
        .map(|_| std::sync::Arc::new(telemetry::AggregatingRecorder::default()));
    if let Some(recorder) = &recorder {
        telemetry::install(recorder.clone());
    }
    let report = run_campaign(&config);
    if let (Some(path), Some(recorder)) = (flag(&flags, "profile"), &recorder) {
        telemetry::uninstall();
        let profile = recorder.profile(&format!("daisyfuzz run --seed {}", report.seed));
        std::fs::write(path, profile.to_json_lines())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("daisyfuzz run: profile written to {path}");
    }
    let rate = if report.elapsed_secs > 0.0 {
        report.cases as f64 / report.elapsed_secs
    } else {
        0.0
    };
    println!(
        "daisyfuzz run: seed={} cases={}/{} panics_contained={} failures={} ({:.1}s, {rate:.0} cases/s)",
        report.seed,
        report.cases,
        report.budget,
        report.panics_contained,
        report.failures.len(),
        report.elapsed_secs
    );
    for f in &report.failures {
        println!(
            "  case {} (seed {:#018x}): {} {} — {}",
            f.index,
            f.case_seed,
            f.oracle,
            if f.panicked { "PANIC" } else { "MISMATCH" },
            f.detail
        );
        println!(
            "    shrunk in {} steps; replay with: daisyfuzz replay --seed {}",
            f.shrink_steps, f.case_seed
        );
        for line in f.shrunk.lines() {
            println!("    | {line}");
        }
    }
    if let Some(path) = flag(&flags, "json") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("daisyfuzz run: report written to {path}");
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_store(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["seed", "budget", "json", "inject"])?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument {extra:?}; {USAGE}"));
    }
    let mut config = StoreSweepConfig {
        seed: parse_u64(&flags, "seed", StoreSweepConfig::default().seed)?,
        budget: parse_u64(&flags, "budget", StoreSweepConfig::default().budget)?,
        inject: None,
    };
    if let Some(kind) = flag(&flags, "inject") {
        config.inject = Some(StoreInject::parse(kind).ok_or_else(|| {
            format!("option --inject needs no-fsync, no-dirsync or no-rename, got {kind:?}")
        })?);
    }

    let report = run_store_sweep(&config);
    println!(
        "daisyfuzz store: seed={} matrix_points={} cases={}{} failures={} ({:.1}s)",
        report.seed,
        report.matrix_points,
        report.cases,
        match report.inject {
            Some(inject) => format!(" inject={}", inject.name()),
            None => String::new(),
        },
        report.failures.len(),
        report.elapsed_secs
    );
    for f in &report.failures {
        println!("  {} (seed {:#018x}): {}", f.phase, f.case_seed, f.detail);
    }
    if let Some(path) = flag(&flags, "json") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("daisyfuzz store: report written to {path}");
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["seed"])?;
    let config = CampaignConfig::default();
    let (label, program, verdict) = match (flag(&flags, "seed"), positional.first()) {
        (Some(_), Some(_)) => {
            return Err(format!("replay takes a file or --seed, not both; {USAGE}"))
        }
        (Some(seed_text), None) => {
            let seed = parse_u64(&flags, "seed", 0)?;
            let (program, verdict) = replay_seed(seed, &config);
            (format!("seed {seed_text}"), program, verdict)
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let program = loop_ir::parser::parse_program(&text)
                .map_err(|e| format!("parsing {path}: {e}"))?;
            let verdict = fuzz::campaign::check_program(&program, &config.oracles);
            (path.clone(), program, verdict)
        }
        (None, None) => return Err(format!("replay needs a case file or --seed; {USAGE}")),
    };
    match &verdict {
        Verdict::Pass => {
            println!(
                "daisyfuzz replay: {label} ({}) passed every oracle",
                program.name
            );
            Ok(ExitCode::SUCCESS)
        }
        Verdict::Mismatch { oracle, detail } => {
            println!("daisyfuzz replay: {label} FAILED oracle {oracle}: {detail}");
            Ok(ExitCode::FAILURE)
        }
        Verdict::Panic { oracle, message } => {
            println!("daisyfuzz replay: {label} PANICKED in oracle {oracle}: {message}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_corpus(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("promote") => {}
        Some(other) => return Err(format!("unknown corpus action {other:?}; {USAGE}")),
        None => return Err(format!("corpus needs an action (promote); {USAGE}")),
    }
    let (flags, positional) = parse_flags(&args[1..], &["seed", "budget", "dir", "cap"])?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument {extra:?}; {USAGE}"));
    }
    let base = parse_u64(&flags, "seed", 0xD4D)?;
    let budget = parse_u64(&flags, "budget", 500)?;
    let cap = parse_u64(&flags, "cap", 24)? as usize;
    let dir = flag(&flags, "dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_corpus_dir);

    let config = CampaignConfig::default();
    let mut graduated = 0usize;
    for index in 0..budget {
        let seed = fuzz::case_seed(base, index);
        let program = fuzz::generate(seed, &config.gen);
        match promote(&dir, &program, seed, cap)? {
            Promotion::Graduated(path) => {
                graduated += 1;
                println!("daisyfuzz corpus: graduated {}", path.display());
            }
            Promotion::Covered => {}
            Promotion::Full => {
                println!("daisyfuzz corpus: cap {cap} reached");
                break;
            }
        }
    }
    let total = load_corpus(&dir)?.len();
    println!(
        "daisyfuzz corpus: {graduated} graduated this run, {total} total in {}",
        dir.display()
    );
    Ok(ExitCode::SUCCESS)
}
