//! Affine program generator and differential fuzz farm.
//!
//! Every fast path in this workspace ships with a slower reference that was
//! kept precisely so it could stand witness: the compiled execution engine
//! against the tree-walking interpreter, the compiled trace stream against
//! the symbolic access walker, the run-compressed cache simulation against
//! the per-access model, the scheduler's warm start against a cold run.
//! This crate turns those witnesses into a farm:
//!
//! - [`gen`] draws random but *valid-by-construction* affine programs from
//!   a seeded generator — imperfect nests, parametric and triangular
//!   bounds, negative-direction and strided subscripts, scalar reductions,
//!   stencil staggering, multi-statement bodies.
//! - [`oracle`] runs each program through every pipeline stage and
//!   cross-checks fast paths against their references, containing panics
//!   with `catch_unwind` so one crash never stops a campaign.
//! - [`shrink`] delta-debugs any failure down to a minimal program that
//!   still reproduces the same oracle's failure class.
//! - [`campaign`] drives the generate → check → shrink loop from a single
//!   campaign seed, with per-case seeds derived by SplitMix64 so every
//!   failure is replayable in isolation, and renders a JSON report.
//! - [`corpus`] graduates programs with novel structural feature sets into
//!   a committed `.loop` corpus that CI replays as a regression test.
//! - [`storage`] points the same farm discipline at the crash-safe
//!   tunestore: an exhaustive power-cut matrix plus a randomized sweep of
//!   torn writes, clean I/O failures and `ENOSPC`, with durability
//!   weakenings as the self-test injections.
//!
//! The `daisyfuzz` binary exposes `run`, `replay`, `corpus promote` and
//! `store`.

pub mod campaign;
pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;
pub mod storage;

pub use campaign::{case_seed, run_campaign, CampaignConfig, CampaignReport, Failure, Inject};
pub use corpus::{features_of, load_corpus, promote, Promotion};
pub use gen::{generate, GenConfig};
pub use oracle::{check_all, check_one, OracleSelection, Verdict, ORACLES};
pub use shrink::{shrink, Shrunk};
pub use storage::{run_store_sweep, StoreFailure, StoreInject, StoreReport, StoreSweepConfig};
