//! Runs the daisy auto-scheduler on a selection of PolyBench kernels (A and B
//! variants) and prints the estimated runtimes next to the Polly and icc
//! baselines — a small-scale version of the paper's Figure 6.
//!
//! Run with `cargo run --example autoschedule_suite` (uses the MEDIUM
//! dataset so it finishes quickly).

use baselines::{icc_schedule, polly_schedule};
use daisy::{DaisyConfig, DaisyScheduler};
use machine::{CostModel, MachineConfig};
use polybench::{benchmark, Dataset};

fn main() {
    let dataset = Dataset::Medium;
    let model = CostModel::new(MachineConfig::xeon_e5_2680v3(), 12);
    let names = ["gemm", "2mm", "atax", "mvt", "jacobi-2d", "syrk"];

    // Seed the transfer-tuning database from the A variants, as in §4.1.
    let mut scheduler = DaisyScheduler::new(DaisyConfig::default());
    let seeds: Vec<_> = names
        .iter()
        .map(|n| (benchmark(n).expect("known benchmark").a)(dataset))
        .collect();
    scheduler.seed_from_programs(&seeds);

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "daisy A", "daisy B", "Polly A", "Polly B", "icc A"
    );
    for name in names {
        let b = benchmark(name).expect("known benchmark");
        let a_prog = (b.a)(dataset);
        let b_prog = (b.b)(dataset);
        let daisy_a = scheduler.schedule(&a_prog).seconds();
        let daisy_b = scheduler.schedule(&b_prog).seconds();
        let polly_a = model.estimate(&polly_schedule(&a_prog)).seconds;
        let polly_b = model.estimate(&polly_schedule(&b_prog)).seconds;
        let icc_a = model.estimate(&icc_schedule(&a_prog)).seconds;
        println!(
            "{name:<12} {daisy_a:>10.5} {daisy_b:>10.5} {polly_a:>10.5} {polly_b:>10.5} {icc_a:>10.5}"
        );
    }
    println!("\ndaisy's A and B runtimes stay close (robustness), the baselines drift apart.");
}
