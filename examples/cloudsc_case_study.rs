//! The CLOUDSC case study (§5): normalize and re-fuse the erosion-of-clouds
//! kernel, verify semantic equivalence with the reference interpreter, and
//! compare the full-model variants sequentially and in parallel.
//!
//! Run with `cargo run --example cloudsc_case_study`.

use machine::interp::run_seeded;
use machine::{simulate_cache, CostModel, MachineConfig};
use normalize::Normalizer;
use polybench::cloudsc::{
    erosion_optimized, erosion_original, full_model, CloudscSizes, CloudscVariant,
};
use transforms::fuse_producer_consumers;

fn main() {
    let machine = MachineConfig::xeon_e5_2680v3();
    let sizes = CloudscSizes::paper();

    // --- the erosion kernel of Figure 10 --------------------------------
    let original = erosion_original(sizes);
    let optimized = erosion_optimized(sizes);
    let sequential = CostModel::new(machine.clone(), 1);
    println!(
        "erosion kernel (KLEV={}, NPROMA={}): original {:.3} ms, normalized+fused {:.3} ms",
        sizes.klev,
        sizes.nproma,
        sequential.estimate(&original).seconds * 1e3,
        sequential.estimate(&optimized).seconds * 1e3
    );
    let mini = CloudscSizes::mini();
    let before = run_seeded(&erosion_original(mini)).expect("original runs");
    let after = run_seeded(&erosion_optimized(mini)).expect("optimized runs");
    println!(
        "semantic check on the mini configuration: max |ΔZTP1| = {:e}",
        before.max_abs_diff(&after, "ZTP1").unwrap()
    );
    let cache = simulate_cache(&erosion_original(mini), &machine).unwrap();
    println!(
        "cache simulation (mini): {} accesses, {} L1 loads",
        cache.accesses(),
        cache.l1().loads
    );

    // --- the full proxy model (Figure 11 / 12) ---------------------------
    let fortran = full_model(CloudscVariant::Fortran, sizes);
    let dace = full_model(CloudscVariant::Dace, sizes);
    let daisy_prog =
        fuse_producer_consumers(&Normalizer::new().run(&dace).expect("normalizes").program);
    for threads in [1usize, 6, 12] {
        let model = CostModel::new(machine.clone(), threads);
        let f = model.estimate(&fortran).seconds;
        let d = model.estimate(&daisy_prog).seconds;
        println!(
            "{threads:>2} thread(s): Fortran {f:.3}s, daisy {d:.3}s ({:+.1}% vs Fortran)",
            100.0 * (f - d) / f
        );
    }
}
