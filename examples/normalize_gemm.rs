//! Demonstrates the two normalization criteria on the paper's Figure 3
//! example: two independent computations with contiguous and strided accesses
//! fused into one loop nest are fissioned and stride-minimized, and the
//! reference interpreter confirms that the semantics are unchanged.
//!
//! Run with `cargo run --example normalize_gemm`.

use loop_ir::parser::parse_program;
use loop_ir::printer::print_program;
use machine::interp::run_seeded;
use normalize::{MaximalFission, Normalizer, StrideMinimization};

fn main() {
    let source = "
        program figure3 {
          param N = 64; param M = 96;
          array A[N][M]; array B[N][M];
          array C[M][N]; array D[M][N];
          for i in 0..N {
            for j in 0..M {
              B[i][j] = A[i][j] * 2.0;
              D[j][i] = C[j][i] + 1.0;
            }
          }
        }";
    let program = parse_program(source).expect("parses");
    println!("--- original (Figure 3a) ---\n{}", print_program(&program));

    let (fissioned, fission_stats) = MaximalFission::new().run(&program);
    println!(
        "--- after maximal loop fission (Figure 3b), {} loop(s) split ---\n{}",
        fission_stats.loops_split,
        print_program(&fissioned)
    );

    let (permuted, permute_stats) = StrideMinimization::new().run(&fissioned);
    println!(
        "--- after stride minimization (Figure 3c), {} nest(s) permuted ---\n{}",
        permute_stats.nests_permuted,
        print_program(&permuted)
    );

    // The full pipeline in one call, plus a semantics check.
    let normalized = Normalizer::new().run(&program).expect("normalizes");
    let before = run_seeded(&program).expect("original runs");
    let after = run_seeded(&normalized.program).expect("normalized runs");
    for array in ["B", "D"] {
        let diff = before.max_abs_diff(&after, array).expect("same shapes");
        println!("max |Δ{array}| between original and normalized: {diff:e}");
    }
}
