//! Quickstart: parse a small kernel, normalize it, schedule it with daisy and
//! compare the estimated runtime against a plain `-O3` compilation.
//!
//! Run with `cargo run --example quickstart`.

use baselines::clang_schedule;
use daisy::{DaisyConfig, DaisyScheduler};
use loop_ir::parser::parse_program;
use machine::{CostModel, MachineConfig};
use normalize::Normalizer;

fn main() {
    // A GEMM written in a structurally poor way: scaling fused into the
    // reduction nest, contraction loop outermost.
    let source = "
        program my_gemm {
          param NI = 512; param NJ = 512; param NK = 512;
          scalar alpha = 1.5; scalar beta = 1.2;
          array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
          for k in 0..NK {
            for j in 0..NJ {
              for i in 0..NI {
                C[i][j] += alpha * A[i][k] * B[k][j];
              }
            }
          }
          for j in 0..NJ { for i in 0..NI { C[i][j] *= beta; } }
        }";
    let program = parse_program(source).expect("the DSL source parses");
    println!(
        "parsed `{}` with {} computations",
        program.name,
        program.computations().len()
    );

    // 1. A priori loop nest normalization.
    let normalized = Normalizer::new()
        .run(&program)
        .expect("normalization succeeds");
    println!(
        "normalization: {} nest(s) split, {} nest(s) permuted",
        normalized.stats.fission.loops_split, normalized.stats.permutation.nests_permuted
    );
    for nest in normalized.program.loop_nests() {
        let order: Vec<String> = nest
            .nested_iterators()
            .iter()
            .map(|v| v.to_string())
            .collect();
        println!("  canonical nest order: {}", order.join(", "));
    }

    // 2. Auto-scheduling with daisy (idiom detection + transfer tuning).
    let mut scheduler = DaisyScheduler::new(DaisyConfig::default());
    scheduler.seed_from_programs(std::slice::from_ref(&program));
    let outcome = scheduler.schedule(&program);
    for decision in &outcome.decisions {
        println!("daisy: {decision}");
    }

    // 3. Compare against the clang -O3 baseline on the machine model.
    let model = CostModel::new(MachineConfig::xeon_e5_2680v3(), 12);
    let baseline = model.estimate(&clang_schedule(&program)).seconds;
    println!(
        "estimated runtime: clang -O3 {:.4}s, daisy {:.4}s ({:.1}x speedup)",
        baseline,
        outcome.seconds(),
        baseline / outcome.seconds()
    );
}
