//! Umbrella crate for the *A Priori Loop Nest Normalization* reproduction.
//!
//! Re-exports the workspace crates under one roof so downstream users (and
//! the repository-level integration tests under `tests/`) can depend on a
//! single package. See the individual crates for the actual machinery:
//!
//! * [`loop_ir`] — the symbolic loop-nest intermediate representation,
//! * [`dependence`] — affine data-dependence analysis and legality queries,
//! * [`transforms`] — loop transformations and optimization recipes,
//! * [`normalize`] — the paper's a priori normalization passes,
//! * [`machine`] — interpreter, streaming cache simulator and cost model,
//! * [`polybench`] — the benchmark suite (PolyBench + CLOUDSC proxy),
//! * [`daisy`] — the normalized auto-scheduler,
//! * [`baselines`] — the schedulers the paper compares against.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use baselines;
pub use daisy;
pub use dependence;
pub use loop_ir;
pub use machine;
pub use normalize;
pub use polybench;
pub use transforms;
